(* fodb — command-line front end for the nowhere-enum library.

   Graphs come either from a generator spec ("grid:30x30", "tree:1000",
   "bdeg:5000:4", …) or from an edge-list file (one "u v" pair per
   line, optional "c <color> <vertex>" lines).  Queries use the FO⁺
   surface syntax of Nd_logic.Parse.  All query subcommands run through
   the Nd_engine façade; --stats / --stats-json report its cost-model
   instrumentation.

   Examples:
     fodb enumerate -g grid:20x20 -q "dist(x,y) <= 2" --limit 10
     fodb enumerate -g grid:30x30 -q "dist(x,y) <= 2" --stats-json
     fodb test      -g tree:500   -q "E(x,y)" --tuple 3,4
     fodb count     -g bdeg:2000:4 -q "C0(x) & dist(x,y) > 2" --colors 2
     fodb cover     -g grid:50x50 -r 2
     fodb splitter  -g clique:30 -r 1
     fodb stats     -g subdiv:8 *)

open Cmdliner
open Nd_graph

(* ---------------- graph loading ---------------- *)

let load_file path =
  let ic = open_in path in
  let edges = ref [] and colors = ref [] and maxv = ref (-1) in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.split_on_char ' ' line with
         | [ "c"; col; v ] ->
             let v = int_of_string v in
             maxv := max !maxv v;
             colors := (int_of_string col, v) :: !colors
         | [ u; v ] ->
             let u = int_of_string u and v = int_of_string v in
             maxv := max !maxv (max u v);
             edges := (u, v) :: !edges
         | _ -> failwith ("bad line: " ^ line)
     done
   with End_of_file -> close_in ic);
  let n = !maxv + 1 in
  let ncolors =
    List.fold_left (fun acc (c, _) -> max acc (c + 1)) 0 !colors
  in
  let sets = Array.init ncolors (fun _ -> Nd_util.Bitset.create n) in
  List.iter (fun (c, v) -> Nd_util.Bitset.add sets.(c) v) !colors;
  Cgraph.create ~n ~colors:sets !edges

let load spec ~colors ~seed =
  let g =
    if Sys.file_exists spec then load_file spec else Gen.of_spec ~seed:1 spec
  in
  if colors > 0 && Cgraph.color_count g = 0 then
    Gen.randomly_color ~seed ~colors g
  else g

(* a mutation journal: one wire-syntax mutation per line, '#' comments *)
let read_mutations path =
  let ic =
    try open_in path
    with Sys_error m -> raise (Nd_error.User_error ("mutation journal: " ^ m))
  in
  let muts = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         muts := Cgraph.mutation_of_string line :: !muts
     done
   with End_of_file -> close_in ic);
  List.rev !muts

(* ---------------- common options ---------------- *)

let graph_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "g"; "graph" ] ~docv:"SPEC" ~doc:"Graph spec or edge-list file.")

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"FO⁺ query.")

let colors_arg =
  Arg.(
    value & opt int 3
    & info [ "colors" ]
        ~doc:"Random colors to add when the graph has none (default 3).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed for coloring.")

let radius_arg =
  Arg.(value & opt int 2 & info [ "r"; "radius" ] ~doc:"Radius parameter.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Enable cost-model instrumentation and print a human-readable \
           report (phase timings, operation counters, delay histograms).")

let stats_json_arg =
  Arg.(
    value & flag
    & info [ "stats-json" ]
        ~doc:"Like $(b,--stats) but emit a single-line JSON object.")

let prometheus_arg =
  Arg.(
    value & flag
    & info [ "prometheus" ]
        ~doc:
          "Enable cost-model instrumentation and print the whole metrics \
           registry in the Prometheus text exposition format (suppresses the \
           human-readable output).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans (preprocessing phases, per-answer next calls, store \
           updates) and write a Chrome trace-event JSON file loadable in \
           Perfetto or chrome://tracing.")

let epsilon_arg =
  Arg.(
    value & opt float 0.5
    & info [ "epsilon" ]
        ~doc:"Storing-structure exponent (register trie degree n^ε).")

let budget_ops_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-ops" ] ~docv:"N"
        ~doc:
          "Cost-model operation budget.  Preprocessing that exhausts it \
           degrades to an exact naive-evaluation handle; answering that \
           exhausts it aborts with exit code 3.")

let timeout_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"N"
        ~doc:
          "Wall-clock budget in milliseconds, with the same degradation \
           and exit semantics as $(b,--budget-ops).")

let mutations_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mutations" ] ~docv:"FILE"
        ~doc:
          "Mutation journal (one $(b,add-edge U V) / $(b,remove-edge U V) / \
           $(b,set-color C V on|off) per line, $(b,#) comments) absorbed \
           through the incremental update pipeline after preparing — the \
           command then answers over the mutated graph without a \
           re-prepare.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains to fan the preprocessing bag-jobs over ($(b,0), the \
           default, auto-detects the machine's core count).  Parallelism \
           never changes results: the prepared structure, its answers, its \
           cost-model ops counters and its snapshot bytes are identical \
           for every N — only wall time varies.")

let resolve_jobs jobs =
  if jobs < 0 then
    invalid_arg "--jobs must be >= 0 (0 auto-detects the core count)"
  else if jobs = 0 then Domain.recommended_domain_count ()
  else jobs

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Structured exit codes (documented in every subcommand's man page):
   2 — user error (unknown graph spec, unparsable query, malformed
       tuple, arity mismatch, out-of-range vertex);
   3 — a resource budget was exhausted;
   4 — an internal invariant violation (paranoid-mode disagreement,
       store corruption).  Plain messages, never cmdliner's
       internal-error banner. *)
let run f =
  let fail code msg =
    flush stdout;
    prerr_endline ("fodb: " ^ msg);
    exit code
  in
  try f () with
  | Invalid_argument msg | Failure msg | Nd_error.User_error msg ->
      fail 2 msg
  | Nd_logic.Parse.Syntax_error msg ->
      fail 2 ("syntax error in query: " ^ msg)
  | Nd_error.Budget_exceeded info ->
      fail 3 ("budget exceeded: " ^ Nd_error.describe_budget info)
  | Nd_error.Internal_invariant msg ->
      fail 4 ("internal invariant violation: " ^ msg)

(* Build the engine handle; every query subcommand funnels through
   here.  Returns the handle plus an [emit] closure printing the
   requested stats report after the command body ran. *)
let with_engine spec query colors seed epsilon stats stats_json prometheus
    trace budget_ops timeout_ms mutations jobs f =
 run @@ fun () ->
  let g = load spec ~colors ~seed in
  let phi = Nd_logic.Parse.formula query in
  let jobs = resolve_jobs jobs in
  let metrics = stats || stats_json || prometheus in
  if metrics then Nd_engine.reset_metrics ();
  (match trace with Some _ -> Nd_trace.enable () | None -> ());
  let budget =
    if budget_ops = None && timeout_ms = None then None
    else Some (Nd_util.Budget.create ?max_ops:budget_ops ?timeout_ms ())
  in
  let eng, prep =
    time (fun () -> Nd_engine.prepare ~epsilon ~metrics ?budget ~jobs g phi)
  in
  if not (stats_json || prometheus) then begin
    Printf.printf "graph: %d vertices, %d edges, %d colors\n" (Cgraph.n g)
      (Cgraph.m g) (Cgraph.color_count g);
    Printf.printf "query: %s (arity %d, %s)\n"
      (Nd_logic.Fo.to_string phi)
      (Nd_engine.arity eng)
      (if Nd_engine.compiled eng then "compiled"
       else if Nd_engine.degraded eng then "degraded"
       else "fallback");
    (match Nd_engine.degradation eng with
    | `Fallback reason -> Printf.printf "degraded: %s\n" reason
    | `Stale_rebuild reason -> Printf.printf "stale rebuild: %s\n" reason
    | `None -> ());
    Printf.printf "preprocessing: %.3fs\n" prep
  end;
  (match mutations with
  | None -> ()
  | Some path ->
      let muts = read_mutations path in
      let (), t = time (fun () -> Nd_engine.update_batch eng muts) in
      if not (stats_json || prometheus) then
        Printf.printf "updates: %d absorbed in %.3fs (epoch %d%s)\n"
          (List.length muts) t (Nd_engine.epoch eng)
          (match Nd_engine.degradation eng with
          | `None -> ""
          | `Stale_rebuild _ -> ", stale rebuild"
          | `Fallback _ -> ", fallback"));
  let emit () =
    if stats_json then
      print_endline (Nd_engine.Stats.to_json (Nd_engine.stats eng))
    else if stats then
      Format.printf "%a" Nd_engine.Stats.pp (Nd_engine.stats eng);
    if prometheus then print_string (Nd_trace.Prometheus.render_current ());
    (* the trace flushes on abnormal exits too: the spans recorded up to
       the failure are the post-mortem *)
    match trace with
    | Some path -> ignore (Nd_trace.save_chrome ~path)
    | None -> ()
  in
  (* The same budget that governed preprocessing governs the command
     body: if preprocessing already exhausted it, the degraded handle is
     reported (stats record and all) and the first answering probe
     aborts with exit 3. *)
  let body () =
    match budget with
    | None -> f eng
    | Some b ->
        Nd_util.Budget.with_installed b (fun () ->
            Nd_util.Budget.enter "answer";
            f eng)
  in
  match body () with
  | () -> emit ()
  | exception e ->
      (* stats first, on every abnormal exit (user error, budget, or
         internal invariant alike — the record is the post-mortem),
         then the diagnostic and exit code, via [run]. *)
      emit ();
      raise e

(* ---------------- subcommands ---------------- *)

let enumerate spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs limit =
  with_engine spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs (fun eng ->
      let quiet = stats_json || prometheus in
      let printed = ref 0 in
      let _, t =
        time (fun () ->
            Nd_engine.enumerate ?limit
              (fun sol ->
                incr printed;
                if not quiet then
                  print_endline (Nd_util.Tuple.to_string sol))
              eng)
      in
      if not quiet then
        Printf.printf "%d solutions in %.3fs\n" !printed t)

let count spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs =
  with_engine spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs (fun eng ->
      let r, t = time (fun () -> Nd_engine.count eng) in
      if not (stats_json || prometheus) then
        Printf.printf "count: %d (%.3fs, %s)\n" r.Nd_core.Count.count t
          (match r.Nd_core.Count.method_ with
          | Nd_core.Count.Exact_pseudolinear -> "pseudo-linear counting"
          | Nd_core.Count.Via_enumeration -> "via enumeration"))

let parse_tuple tuple =
  Array.of_list
    (List.map
       (fun s ->
         match int_of_string_opt (String.trim s) with
         | Some v -> v
         | None ->
             invalid_arg
               (Printf.sprintf "bad tuple %S (expected comma-separated ints)"
                  tuple))
       (String.split_on_char ',' tuple))

let test spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs tuple =
  with_engine spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs (fun eng ->
      let tup = parse_tuple tuple in
      let ans, t = time (fun () -> Nd_engine.test eng tup) in
      if not (stats_json || prometheus) then
        Printf.printf "%s ∈ q(G): %b  (%.6fs)\n"
          (Nd_util.Tuple.to_string tup) ans t)

let next spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs tuple =
  with_engine spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs (fun eng ->
      let tup = parse_tuple tuple in
      let ans, t = time (fun () -> Nd_engine.next eng tup) in
      if not (stats_json || prometheus) then
        match ans with
        | Some s ->
            Printf.printf "smallest solution ≥ %s: %s  (%.6fs)\n"
              (Nd_util.Tuple.to_string tup) (Nd_util.Tuple.to_string s) t
        | None ->
            Printf.printf "no solution ≥ %s\n" (Nd_util.Tuple.to_string tup))

(* absorb mutations one at a time (per-mutation timing and epoch), then
   enumerate over the final graph — the demonstration that answers track
   mutations without a re-prepare *)
let update spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs mut_strs limit =
  with_engine spec query colors seed epsilon stats stats_json prometheus trace
    budget_ops timeout_ms mutations jobs (fun eng ->
      let quiet = stats_json || prometheus in
      let muts = List.map Cgraph.mutation_of_string mut_strs in
      List.iter
        (fun m ->
          let (), t = time (fun () -> Nd_engine.update eng m) in
          if not quiet then
            Printf.printf "applied %s in %.6fs (epoch %d%s)\n"
              (Cgraph.mutation_to_string m)
              t (Nd_engine.epoch eng)
              (match Nd_engine.degradation eng with
              | `None -> ""
              | `Stale_rebuild _ -> ", stale rebuild"
              | `Fallback _ -> ", fallback"))
        muts;
      let printed = ref 0 in
      let _, t =
        time (fun () ->
            Nd_engine.enumerate ?limit
              (fun sol ->
                incr printed;
                if not quiet then
                  print_endline (Nd_util.Tuple.to_string sol))
              eng)
      in
      if not quiet then
        Printf.printf "%d solutions in %.3fs at epoch %d\n" !printed t
          (Nd_engine.epoch eng))

let cover spec colors seed r =
 run @@ fun () ->
  let g = load spec ~colors ~seed in
  let rep, t = time (fun () -> Nd_engine.Inspect.cover g ~r) in
  Printf.printf
    "(%d,%d)-neighborhood cover of %d vertices: %d bags, degree %d, Σ|X| = %d \
     (%.3fs)\n"
    r (2 * r) (Cgraph.n g) rep.Nd_engine.Inspect.bags
    rep.Nd_engine.Inspect.degree rep.Nd_engine.Inspect.weight t;
  match rep.Nd_engine.Inspect.verified with
  | Ok () -> print_endline "cover properties verified"
  | Error e -> Printf.printf "INVALID COVER: %s\n" e

let splitter spec colors seed r =
 run @@ fun () ->
  let g = load spec ~colors ~seed in
  Printf.printf "(λ,%d)-splitter game on %d vertices: " r (Cgraph.n g);
  match Nd_engine.Inspect.splitter_rounds ~max_rounds:64 g ~r with
  | Some l -> Printf.printf "Splitter wins in %d rounds\n" l
  | None -> print_endline "Splitter does not win within 64 rounds"

let stats spec colors seed prometheus =
 run @@ fun () ->
  if prometheus then begin
    Nd_util.Metrics.reset ();
    Nd_util.Metrics.enable ()
  end;
  let g = load spec ~colors ~seed in
  let rep = Nd_engine.Inspect.graph_stats g in
  if prometheus then print_string (Nd_trace.Prometheus.render_current ())
  else begin
    Printf.printf "vertices: %d\nedges: %d\ncolors: %d\n"
      rep.Nd_engine.Inspect.gn rep.Nd_engine.Inspect.gm
      rep.Nd_engine.Inspect.gcolors;
    if rep.Nd_engine.Inspect.gn > 0 then
      Printf.printf "degree: max %d, median %d\n"
        rep.Nd_engine.Inspect.degree_max rep.Nd_engine.Inspect.degree_median;
    List.iter
      (fun (r, p) ->
        Printf.printf "weak %d-accessibility: max %d, mean %.2f\n" r
          p.Nd_nowhere.Wcol.max p.Nd_nowhere.Wcol.mean)
      rep.Nd_engine.Inspect.wcol
  end

(* ---------------- profile ---------------- *)

let profile spec sizes query colors seed limit tolerance json =
 run @@ fun () ->
  let sizes =
    List.map
      (fun s ->
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> n
        | _ -> invalid_arg (Printf.sprintf "profile: bad size %S" s))
      (String.split_on_char ',' sizes)
  in
  let r =
    Nd_profile.run ~query ~colors ~seed ?limit ~tolerance ~spec ~sizes ()
  in
  if json then print_endline (Nd_profile.to_json r) else Nd_profile.print r;
  (* a regression of the constant-delay contract is an error exit, so CI
     can gate on the command alone *)
  if not r.Nd_profile.delay_invariant then exit 1

(* ---------------- snapshot persistence ---------------- *)

let make_budget budget_ops timeout_ms =
  if budget_ops = None && timeout_ms = None then None
  else Some (Nd_util.Budget.create ?max_ops:budget_ops ?timeout_ms ())

let snapshot_save spec query colors seed epsilon budget_ops timeout_ms warm
    mutations jobs file =
 run @@ fun () ->
  let g = load spec ~colors ~seed in
  let phi = Nd_logic.Parse.formula query in
  let budget = make_budget budget_ops timeout_ms in
  let jobs = resolve_jobs jobs in
  let eng, prep =
    time (fun () -> Nd_engine.prepare ~epsilon ?budget ~jobs g phi)
  in
  (* mutations first, warm after: the snapshot carries the mutated
     graph's epoch and a cache consistent with it *)
  (match mutations with
  | None -> ()
  | Some path -> Nd_engine.update_batch eng (read_mutations path));
  if warm > 0 then
    Nd_trace.with_span "engine.cache_warm" (fun () ->
        Nd_engine.enumerate ~limit:warm (fun _ -> ()) eng);
  let bytes, t = time (fun () -> Nd_snapshot.save ~path:file eng) in
  Printf.printf
    "snapshot: %d bytes to %s (prepare %.3fs, save %.3fs, %d cached \
     solutions, epoch %d)\n"
    bytes file prep t
    (Nd_engine.cache_size eng)
    (Nd_engine.epoch eng)

let snapshot_load spec query colors seed epsilon strict cold mutations journal
    file =
 run @@ fun () ->
  let g = load spec ~colors ~seed in
  (* --mutations folds into the *presented* graph before verification
     (how CI provokes Stale_epoch with a mutate-and-revert pair);
     --journal replays through the loaded handle after verification *)
  let g =
    match mutations with
    | None -> g
    | Some path -> List.fold_left Cgraph.apply g (read_mutations path)
  in
  let journal =
    match journal with None -> [] | Some path -> read_mutations path
  in
  let phi = Nd_logic.Parse.formula query in
  let warm = not cold in
  let eng, t =
    if strict then
      match time (fun () -> Nd_snapshot.load_routed ~warm ~path:file g phi) with
      | Ok (eng, route), t ->
          List.iter (fun m -> Nd_engine.update eng m) journal;
          Printf.printf "loaded %s in %.3fs (%s)\n" file t
            (Nd_snapshot.describe_route route);
          (eng, t)
      | Error c, _ ->
          Nd_error.user_errorf "snapshot rejected: %s" (Nd_snapshot.describe c)
    else
      let (eng, outcome), t =
        time (fun () ->
            Nd_snapshot.load_or_rebuild ~epsilon ~warm ~journal ~path:file g
              phi)
      in
      (match outcome with
      | Nd_snapshot.Loaded -> Printf.printf "loaded %s in %.3fs\n" file t
      | Nd_snapshot.Rebuilt c ->
          Printf.printf "snapshot rejected (%s); rebuilt in %.3fs\n"
            (Nd_snapshot.describe c) t);
      (eng, t)
  in
  ignore t;
  Printf.printf "cache: %d solutions%s (epoch %d)\n"
    (Nd_engine.cache_size eng)
    (if Nd_engine.cache_complete eng then " (complete)" else "")
    (Nd_engine.epoch eng);
  match Nd_engine.first eng with
  | Some s -> Printf.printf "first solution: %s\n" (Nd_util.Tuple.to_string s)
  | None -> print_endline "no solutions"

let snapshot_info file =
 run @@ fun () ->
  match Nd_snapshot.info ~path:file with
  | Error c ->
      Nd_error.user_errorf "%s: %s" file (Nd_snapshot.describe c)
  | Ok i ->
      Printf.printf "format version: %d (built by OCaml %s)\n"
        i.Nd_snapshot.version i.Nd_snapshot.ocaml_version;
      Printf.printf "warm store: %s\n"
        (if i.Nd_snapshot.warmable then "yes (bank pages mmap-ready)"
         else if i.Nd_snapshot.version >= 3 then "no (no store image)"
         else "no (format 2 carries only the replay cache)");
      Printf.printf "query: %s (arity %d, hash %08x)\n" i.Nd_snapshot.query
        i.Nd_snapshot.arity i.Nd_snapshot.query_hash;
      Printf.printf "graph: %d vertices, %d edges, %d colors (fingerprint \
                     %08x)\n"
        i.Nd_snapshot.graph_n i.Nd_snapshot.graph_m i.Nd_snapshot.graph_colors
        i.Nd_snapshot.graph_fingerprint;
      Printf.printf "epsilon: %g\ncached solutions: %d\n" i.Nd_snapshot.epsilon
        i.Nd_snapshot.cached_solutions;
      List.iter
        (fun s ->
          Printf.printf "section %s: %d bytes at offset %d, crc %08x\n"
            s.Nd_snapshot.tag s.Nd_snapshot.len s.Nd_snapshot.off
            s.Nd_snapshot.crc)
        i.Nd_snapshot.sections

(* ---------------- serve ---------------- *)

(* One worker lifetime: prepare (or revive + replay the journal),
   serve until quit/EOF/signal, report.  Under --supervise this runs in
   a forked child; the fork happens before this function, because it
   spawns domains (--jobs) and OCaml 5 forbids forking after the first
   Domain.spawn. *)
(* black-box naming: one flight file per worker, derived from the
   socket path so shards x replicas sharing one --blackbox DIR cannot
   collide *)
let worker_name socket =
  match socket with
  | Some p -> Filename.remove_extension (Filename.basename p)
  | None -> "worker"

let ensure_dir d =
  try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let flight_path dir name = Filename.concat dir (name ^ ".flight.jsonl")

let serve_worker spec query colors seed epsilon snapshot_file socket backlog
    request_budget_ops request_timeout_ms max_enumerate chaos event_log_file
    no_metrics trace jobs max_inflight max_conns io_timeout_ms idle_timeout_ms
    max_line_bytes retry_after_ms journal_file blackbox shard_index shard_count
    =
  (* metrics default ON in serve so the `metrics` scrape verb has
     something to report over a long session *)
  if not no_metrics then Nd_util.Metrics.enable ();
  (match trace with Some _ -> Nd_trace.enable () | None -> ());
  let g = load spec ~colors ~seed in
  let phi = Nd_logic.Parse.formula query in
  (* cluster mode: the ownership map comes from the BOOT graph — before
     journal replay or any mutation — so every worker and the router
     derive the identical partition no matter when they (re)started *)
  let owner =
    if shard_count <= 1 then None
    else begin
      if shard_index < 0 || shard_index >= shard_count then
        Nd_error.user_errorf "serve: --shard-index %d out of range for \
                              --shard-count %d" shard_index shard_count;
      let own = Nd_cluster.Ownership.compute g ~shards:shard_count in
      Printf.eprintf "fodb serve: shard %d/%d\n%!" shard_index shard_count;
      Some (Nd_cluster.Ownership.owner own ~shard:shard_index)
    end
  in
  (* the recovery journal: every mutation applied in a previous worker
     lifetime, replayed before serving so a restarted (or kill -9'd)
     worker resumes at the pre-crash epoch *)
  let journal_muts =
    match journal_file with
    | Some path when Sys.file_exists path -> read_mutations path
    | _ -> []
  in
  (* diagnostics go to stderr; stdout carries only protocol replies *)
  let eng =
    match snapshot_file with
    | Some path ->
        let eng, outcome =
          Nd_snapshot.load_or_rebuild ~epsilon
            ?journal:(if journal_muts = [] then None else Some journal_muts)
            ~path g phi
        in
        (match outcome with
        | Nd_snapshot.Loaded ->
            Printf.eprintf "fodb serve: loaded snapshot %s\n%!" path
        | Nd_snapshot.Rebuilt c ->
            Printf.eprintf "fodb serve: snapshot rejected (%s); rebuilt\n%!"
              (Nd_snapshot.describe c));
        eng
    | None ->
        let eng = Nd_engine.prepare ~epsilon ~jobs:(resolve_jobs jobs) g phi in
        if journal_muts <> [] then Nd_engine.update_batch eng journal_muts;
        eng
  in
  if journal_muts <> [] then
    Printf.eprintf "fodb serve: replayed %d journal mutations (epoch %d)\n%!"
      (List.length journal_muts) (Nd_engine.epoch eng);
  let event_log_oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      event_log_file
  in
  let event_log =
    Option.map
      (fun oc line ->
        output_string oc line;
        output_char oc '\n';
        flush oc)
      event_log_oc
  in
  (* the journal is append-only and flushed per mutation: a crash right
     after an update still finds the mutation on disk at replay time *)
  let journal_oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      journal_file
  in
  let journal =
    Option.map
      (fun oc line ->
        output_string oc line;
        output_char oc '\n';
        flush oc)
      journal_oc
  in
  let flight_rec =
    Option.map
      (fun dir ->
        ensure_dir dir;
        Nd_obs.Flight.create ~path:(flight_path dir (worker_name socket)) ())
      blackbox
  in
  (* the (boot) row pins the post-replay epoch: a supervisor's
     post-mortem matches the previous incarnation's last recorded
     epoch against it *)
  Option.iter
    (fun fl ->
      Nd_obs.Flight.record fl
        (Printf.sprintf
           "{\"ts_us\":%d,\"rid\":0,\"span\":0,\"cmd\":\"(boot)\",\"status\":\"ok\",\"epoch\":%d,\"latency_us\":0,\"lines\":0}"
           (Nd_obs.now_us ()) (Nd_engine.epoch eng)))
    flight_rec;
  let config =
    {
      Nd_server.request_budget_ops;
      request_timeout_ms;
      max_enumerate;
      chaos;
      event_log;
      max_inflight;
      max_conns;
      io_timeout_ms;
      idle_timeout_ms;
      max_line_bytes;
      retry_after_ms;
      journal;
      owner;
      flight = Option.map (fun fl line -> Nd_obs.Flight.record fl line) flight_rec;
    }
  in
  let srv = Nd_server.create ~config eng in
  (try
     let stop _ = Nd_server.request_stop srv in
     Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
   with Invalid_argument _ | Sys_error _ -> ());
  (match socket with
  | Some path -> Nd_server.serve_socket ~backlog srv ~path
  | None -> Nd_server.serve srv stdin stdout);
  Option.iter close_out_noerr event_log_oc;
  Option.iter close_out_noerr journal_oc;
  Option.iter Nd_obs.Flight.close flight_rec;
  (match trace with
  | Some path ->
      let n = Nd_trace.save_chrome ~path in
      Printf.eprintf "fodb serve: wrote %d spans to %s\n%!" n path
  | None -> ());
  let c = Nd_server.counts srv in
  Printf.eprintf
    "fodb serve: %d requests (%d ok, %d user, %d budget, %d internal)\n%!"
    c.Nd_server.requests c.Nd_server.ok c.Nd_server.user_errors
    c.Nd_server.budget_errors c.Nd_server.internal_errors;
  if c.Nd_server.overloaded > 0 || c.Nd_server.shutting_down > 0 then
    Printf.eprintf "fodb serve: shed %d (overloaded), refused %d \
                    (shutting-down)\n%!"
      c.Nd_server.overloaded c.Nd_server.shutting_down

let serve spec query colors seed epsilon snapshot_file socket backlog
    request_budget_ops request_timeout_ms max_enumerate chaos event_log_file
    no_metrics trace jobs max_inflight max_conns io_timeout_ms idle_timeout_ms
    max_line_bytes retry_after_ms journal_file blackbox shard_index shard_count
    supervise max_crashes restart_backoff_ms restart_window_ms =
 run @@ fun () ->
  let worker () =
    serve_worker spec query colors seed epsilon snapshot_file socket backlog
      request_budget_ops request_timeout_ms max_enumerate chaos event_log_file
      no_metrics trace jobs max_inflight max_conns io_timeout_ms
      idle_timeout_ms max_line_bytes retry_after_ms journal_file blackbox
      shard_index shard_count
  in
  if not supervise then worker ()
  else begin
    (* The supervising parent never prepares an engine (never spawns a
       domain), so forking workers stays legal for its whole lifetime.
       Each worker re-derives its state from snapshot + journal, which
       is exactly the crash-recovery path. *)
    let module Sup = Nd_server.Supervisor in
    let child = ref None in
    (* a stop signal can land during the restart backoff, when there is
       no worker to forward to; remember it and pass it to the next
       spawn, or the supervisor would restart into a fleet that is
       shutting down and wait on that worker forever *)
    let stopping = ref false in
    let forward signal =
      stopping := true;
      match !child with
      | Some pid -> ( try Unix.kill pid signal with Unix.Unix_error _ -> ())
      | None -> ()
    in
    (try
       Sys.set_signal Sys.sigint
         (Sys.Signal_handle (fun _ -> forward Sys.sigint));
       Sys.set_signal Sys.sigterm
         (Sys.Signal_handle (fun _ -> forward Sys.sigterm))
     with Invalid_argument _ | Sys_error _ -> ());
    let spawn () =
      match Unix.fork () with
      | 0 -> (
          (* the worker: run one serve lifetime, fold failures into the
             exit code the supervisor classifies *)
          try
            worker ();
            exit 0
          with e ->
            Printf.eprintf "fodb serve: worker failed: %s\n%!"
              (Printexc.to_string e);
            exit 1)
      | pid ->
          child := Some pid;
          if !stopping then (
            try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          Printf.eprintf "fodb serve: supervisor: worker pid=%d\n%!" pid;
          pid
    in
    let wait pid =
      let rec w () =
        match Unix.waitpid [] pid with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> w ()
        | _, Unix.WEXITED c -> Sup.Exited c
        | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> Sup.Signaled s
      in
      let o = w () in
      child := None;
      o
    in
    let policy =
      {
        Sup.backoff = Nd_util.Backoff.schedule ~max_ms:5_000 restart_backoff_ms;
        max_crashes;
        window_ms = restart_window_ms;
      }
    in
    let log m = Printf.eprintf "fodb serve: supervisor: %s\n%!" m in
    (* crash harvest: between the wait and the restart sleep neither
       incarnation can touch the flight file, so reading + truncating
       it here is race-free *)
    let pm_count = ref 0 in
    let on_crash outcome d =
      Option.iter
        (fun dir ->
          let name = worker_name socket in
          let src = flight_path dir name in
          let events =
            Nd_obs.Flight.harvest ~src
              ~capacity:Nd_obs.Flight.default_capacity
          in
          incr pm_count;
          let path =
            Filename.concat dir
              (Printf.sprintf "%s.postmortem-%d.jsonl" name !pm_count)
          in
          Nd_obs.Flight.write_postmortem ~path
            ~cause:(Sup.describe_outcome outcome)
            ~decision:
              (match d with
              | Sup.Restart_after_ms ms -> Printf.sprintf "restart in %dms" ms
              | Sup.Give_up r -> "give up: " ^ r)
            ~last_epoch:(Nd_obs.Flight.last_epoch events)
            ~events;
          Nd_obs.Flight.truncate src;
          log
            (Printf.sprintf "post-mortem %s (%d events)" path
               (List.length events)))
        blackbox
    in
    match Sup.run ~policy ~log ~on_crash ~spawn ~wait () with
    | Ok () -> ()
    | Error reason ->
        Printf.eprintf "fodb serve: supervisor: circuit breaker open: %s\n%!"
          reason;
        exit 1
  end

(* ---------------- chaos-proxy ---------------- *)

(* The socket-level member of the fault-injection family: a
   deterministic adversary between a real client and a real server.
   Runs until SIGINT/SIGTERM. *)
let chaos_proxy listen upstream chunk delay_ms garbage cut_after
    cut_reply_after =
 run @@ fun () ->
  let profile =
    {
      Nd_ram.Chaos.Net.chunk = Option.value ~default:max_int chunk;
      delay_ms;
      garbage;
      cut_after;
      cut_reply_after;
    }
  in
  let proxy = Nd_ram.Chaos.Net.start profile ~listen ~upstream in
  Printf.eprintf "fodb chaos-proxy: %s -> %s\n%!" listen upstream;
  let stop = ref false in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
     Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
   with Invalid_argument _ | Sys_error _ -> ());
  while not !stop do
    (* the stop signal interrupts the nap — that is its job, not an error *)
    try ignore (Unix.select [] [] [] 0.2)
    with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  let n = Nd_ram.Chaos.Net.connections proxy in
  Nd_ram.Chaos.Net.stop proxy;
  Printf.eprintf "fodb chaos-proxy: %d connections proxied\n%!" n

(* ---------------- client ---------------- *)

(* The CI-facing counterpart of serve --socket: connect, send request
   lines (positional args, else stdin), print every reply line.  Budget
   errors retry through Nd_server.Client.call's backoff policy; a [bye]
   terminator (quit, or a server-side stop) ends the session. *)
let client socket requests =
 run @@ fun () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with Unix.Unix_error (e, _, _) ->
     Nd_error.user_errorf "client: connect %s: %s" socket
       (Unix.error_message e));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let transport = Nd_server.Client.channel_transport ic oc in
  let send line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else
      let r = Nd_server.Client.call transport line in
      List.iter print_endline r.Nd_server.Client.reply;
      flush stdout;
      match r.Nd_server.Client.status with
      | Nd_server.Client.Closed -> raise Exit
      | _ -> ()
  in
  (try
     match requests with
     | _ :: _ -> List.iter send requests
     | [] -> (
         try
           while true do
             send (input_line stdin)
           done
         with End_of_file -> ())
   with Exit -> ());
  close_in_noerr ic

(* ---------------- router ---------------- *)

(* "S:X" — a shard id plus a payload (socket path, replica index). *)
let parse_shard_colon what s =
  match String.index_opt s ':' with
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | Some sh when sh >= 0 ->
          (sh, String.sub s (i + 1) (String.length s - i - 1))
      | _ -> Nd_error.user_errorf "%s: bad shard id in %S" what s)
  | None -> Nd_error.user_errorf "%s: expected SHARD:..., got %S" what s

let parse_replica_pair what s =
  let sh, rest = parse_shard_colon what s in
  match int_of_string_opt rest with
  | Some r when r >= 0 -> (sh, r)
  | _ -> Nd_error.user_errorf "%s: bad replica index in %S" what s

(* event-log plumbing shared by serve/router/cluster: an append-only
   JSONL sink, flushed per row *)
let event_sink file =
  let oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      file
  in
  let sink =
    Option.map
      (fun oc line ->
        output_string oc line;
        output_char oc '\n';
        flush oc)
      oc
  in
  (sink, fun () -> Option.iter close_out_noerr oc)

let router_config ~no_fence ~probe_interval_ms ~retry_after_ms ~max_enumerate
    ~event_log =
  {
    Nd_cluster.Router.default_config with
    fence = not no_fence;
    probe_interval_ms;
    retry_after_ms;
    max_enumerate;
    event_log;
  }

let print_router_stats tag rt =
  let s = Nd_cluster.Router.stats rt in
  Printf.eprintf
    "%s: %d requests (%d ok, %d user, %d unavailable), %d failovers, %d \
     fence refusals, %d catchups, %d probes, epoch %d, %d live, %d fenced\n\
     %!"
    tag s.Nd_cluster.Router.requests s.Nd_cluster.Router.ok
    s.Nd_cluster.Router.user_errors s.Nd_cluster.Router.unavailable
    s.Nd_cluster.Router.failovers s.Nd_cluster.Router.fence_refusals
    s.Nd_cluster.Router.catchups s.Nd_cluster.Router.probes
    s.Nd_cluster.Router.fleet_epoch s.Nd_cluster.Router.live
    s.Nd_cluster.Router.fenced

(* The sidecar metrics listener: each connection receives one
   aggregated fleet scrape and is closed — curl-over-UDS semantics
   without an HTTP stack.  [fodb obs scrape] is the matching reader. *)
let metrics_listener rt ~path ~stop =
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  Thread.create
    (fun () ->
      let rec loop () =
        if !stop then ()
        else
          match Unix.select [ sock ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | [], _, _ -> loop ()
          | _ ->
              (match Unix.accept sock with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | fd, _ ->
                  let oc = Unix.out_channel_of_descr fd in
                  (try
                     output_string oc (Nd_cluster.Router.scrape_metrics rt);
                     flush oc
                   with Sys_error _ -> ());
                  close_out_noerr oc);
              loop ()
      in
      loop ();
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    ()

(* The fleet front-end over already-running shard workers: same line
   protocol as serve, answers reconstituted by the epoch-fenced k-way
   merge.  The ownership map is re-derived from the boot graph, which
   is why the router takes -g/-q at all. *)
let router spec query colors seed shards endpoints socket backlog
    probe_interval_ms no_fence retry_after_ms max_enumerate event_log_file
    metrics_socket trace =
 run @@ fun () ->
  if shards < 1 then Nd_error.user_errorf "router: --shards must be >= 1";
  if endpoints = [] then
    Nd_error.user_errorf "router: at least one --endpoint SHARD:PATH required";
  Nd_util.Metrics.enable ();
  (match trace with Some _ -> Nd_trace.enable () | None -> ());
  let g = load spec ~colors ~seed in
  let phi = Nd_logic.Parse.formula query in
  let arity = Nd_logic.Fo.arity phi in
  let own = Nd_cluster.Ownership.compute g ~shards in
  let eps =
    List.map
      (fun s ->
        let sh, path = parse_shard_colon "--endpoint" s in
        if sh >= shards then
          Nd_error.user_errorf "--endpoint %S: shard out of range (%d shards)"
            s shards;
        Nd_cluster.Router.socket_endpoint ~shard:sh path)
      endpoints
  in
  let event_log, close_events = event_sink event_log_file in
  let config =
    router_config ~no_fence ~probe_interval_ms ~retry_after_ms ~max_enumerate
      ~event_log
  in
  let rt = Nd_cluster.Router.create ~config ~ownership:own ~arity eps in
  (try
     let stop _ = Nd_cluster.Router.request_stop rt in
     Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
   with Invalid_argument _ | Sys_error _ -> ());
  let prober = Nd_cluster.Router.start_probes rt in
  let mstop = ref false in
  let mthread =
    Option.map (fun path -> metrics_listener rt ~path ~stop:mstop)
      metrics_socket
  in
  (match socket with
  | Some path -> Nd_cluster.Router.serve_socket ~backlog rt ~path
  | None -> Nd_cluster.Router.serve rt stdin stdout);
  Nd_cluster.Router.request_stop rt;
  ignore (Nd_cluster.Router.drain rt);
  Option.iter Thread.join prober;
  mstop := true;
  Option.iter Thread.join mthread;
  close_events ();
  (match trace with
  | Some path ->
      let n = Nd_trace.save_chrome ~path in
      Printf.eprintf "fodb router: wrote %d spans to %s\n%!" n path
  | None -> ());
  print_router_stats "fodb router" rt

(* ---------------- cluster ---------------- *)

(* The whole fleet in one command: snapshot the boot engine, spawn
   shards x replicas worker processes (fodb serve --shard-index ...),
   optionally interpose chaos proxies, run the router over them.  The
   parent prepares with jobs=1 — no domain is ever spawned before the
   forks, which OCaml 5 requires. *)
let cluster spec query colors seed epsilon shards replicas dir socket backlog
    supervise differential mutations kill_replica probe_interval_ms no_fence
    chaos_links chaos_chunk chaos_delay_ms chaos_garbage chaos_cut_reply_after
    event_log_file trace blackbox metrics_socket =
 run @@ fun () ->
  if trace then Nd_trace.enable ();
  if shards < 1 then Nd_error.user_errorf "cluster: --shards must be >= 1";
  if replicas < 1 then Nd_error.user_errorf "cluster: --replicas must be >= 1";
  let dir =
    let d =
      match dir with
      | Some d -> d
      | None ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "fodb-cluster-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let chaos_links =
    List.map (parse_replica_pair "--chaos-link") chaos_links
  in
  let kill_replica =
    Option.map (parse_replica_pair "--kill-replica") kill_replica
  in
  Printf.eprintf "fodb cluster: %d shards x %d replicas in %s\n%!" shards
    replicas dir;
  let g = load spec ~colors ~seed in
  let phi = Nd_logic.Parse.formula query in
  let arity = Nd_logic.Fo.arity phi in
  let own = Nd_cluster.Ownership.compute g ~shards in
  (* the boot snapshot every worker revives from (kill -9 recovery is
     exactly this snapshot plus the worker's own journal) *)
  let snap = Filename.concat dir "boot.snap" in
  let single = Nd_engine.prepare ~epsilon ~jobs:1 g phi in
  ignore (Nd_snapshot.save ~path:snap single);
  let sock_path s r = Filename.concat dir (Printf.sprintf "w-%d-%d.sock" s r) in
  let chaos_path s r =
    Filename.concat dir (Printf.sprintf "chaos-%d-%d.sock" s r)
  in
  let journal_path s r =
    Filename.concat dir (Printf.sprintf "w-%d-%d.journal" s r)
  in
  let log_path s r = Filename.concat dir (Printf.sprintf "w-%d-%d.log" s r) in
  let pids = ref [] in
  let proxies = ref [] in
  let spawn_worker s r =
    let log_fd =
      Unix.openfile (log_path s r)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    in
    let args =
      [
        Sys.executable_name; "serve"; "-g"; spec; "-q"; query; "--colors";
        string_of_int colors; "--seed"; string_of_int seed; "--epsilon";
        Printf.sprintf "%.17g" epsilon; "--socket"; sock_path s r;
        "--shard-index"; string_of_int s; "--shard-count";
        string_of_int shards; "--snapshot"; snap; "--journal";
        journal_path s r; "--jobs"; "1";
      ]
      @ (if supervise then [ "--supervise" ] else [])
      @ (if trace then
           [
             "--trace";
             Filename.concat dir (Printf.sprintf "w-%d-%d.trace.json" s r);
           ]
         else [])
      @ (if blackbox then [ "--blackbox"; dir ] else [])
    in
    let pid =
      Unix.create_process Sys.executable_name (Array.of_list args) Unix.stdin
        log_fd log_fd
    in
    Unix.close log_fd;
    pids := ((s, r), pid) :: !pids
  in
  let shutdown () =
    let signal s (_, pid) =
      try Unix.kill pid s with Unix.Unix_error _ -> ()
    in
    let reaped (_, pid) =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
      | exception Unix.Unix_error _ -> false
    in
    (* SIGTERM, then escalate: a second SIGTERM (a supervisor mid
       restart-backoff forwards nothing), finally SIGKILL *)
    List.iter (signal Sys.sigterm) !pids;
    let rec wait remaining rounds =
      let remaining = List.filter (fun p -> not (reaped p)) remaining in
      if remaining = [] then ()
      else if rounds = 100 || rounds = 200 then begin
        List.iter (signal Sys.sigterm) remaining;
        wait remaining (rounds + 1)
      end
      else if rounds >= 300 then begin
        List.iter (signal Sys.sigkill) remaining;
        List.iter
          (fun (_, pid) ->
            let rec w () =
              match Unix.waitpid [] pid with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> w ()
              | exception Unix.Unix_error _ -> ()
              | _ -> ()
            in
            w ())
          remaining
      end
      else begin
        (try ignore (Unix.select [] [] [] 0.05)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        wait remaining (rounds + 1)
      end
    in
    wait !pids 0;
    List.iter Nd_ram.Chaos.Net.stop !proxies
  in
  Fun.protect ~finally:shutdown @@ fun () ->
  for s = 0 to shards - 1 do
    for r = 0 to replicas - 1 do
      spawn_worker s r
    done
  done;
  (* workers are forked; threads (chaos pumps, probe timer) are safe
     from here on.  Wait for every worker socket before interposing
     proxies, so a proxy's lazy upstream dial cannot race a slow boot. *)
  let ready_policy =
    {
      Nd_server.Client.default_connect_policy with
      connect_retries = 600;
      connect_deadline_ms = 120_000;
    }
  in
  let wait_ready s r =
    match Nd_server.Client.connect ~policy:ready_policy (sock_path s r) with
    | Ok fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | Error m -> Nd_error.user_errorf "cluster: worker %d:%d not ready: %s" s r m
  in
  for s = 0 to shards - 1 do
    for r = 0 to replicas - 1 do
      wait_ready s r
    done
  done;
  let chaos_profile =
    {
      Nd_ram.Chaos.Net.chunk = Option.value ~default:max_int chaos_chunk;
      delay_ms = chaos_delay_ms;
      garbage = chaos_garbage;
      cut_after = None;
      cut_reply_after = chaos_cut_reply_after;
    }
  in
  List.iter
    (fun (s, r) ->
      if s >= shards || r >= replicas then
        Nd_error.user_errorf "--chaos-link %d:%d: no such replica" s r;
      proxies :=
        Nd_ram.Chaos.Net.start chaos_profile ~listen:(chaos_path s r)
          ~upstream:(sock_path s r)
        :: !proxies;
      Printf.eprintf "fodb cluster: chaos link on %d:%d\n%!" s r)
    chaos_links;
  let endpoint s r =
    let path =
      if List.mem (s, r) chaos_links then chaos_path s r else sock_path s r
    in
    let connect =
      {
        Nd_server.Client.default_connect_policy with
        connect_retries = 40;
        connect_deadline_ms = 10_000;
      }
    in
    Nd_cluster.Router.socket_endpoint ~connect ~shard:s path
  in
  let eps =
    List.concat_map
      (fun s -> List.init replicas (fun r -> endpoint s r))
      (List.init shards (fun s -> s))
  in
  let event_log, close_events = event_sink event_log_file in
  let config =
    let c =
      router_config ~no_fence ~probe_interval_ms ~retry_after_ms:100
        ~max_enumerate:(Nd_cluster.Router.default_config.max_enumerate)
        ~event_log
    in
    (* killed workers take a supervisor restart to come back: give the
       failover ladder enough passes to ride that out *)
    { c with retries = 8; backoff_ms = 100 }
  in
  let rt = Nd_cluster.Router.create ~config ~ownership:own ~arity eps in
  let prober = Nd_cluster.Router.start_probes rt in
  let mstop = ref false in
  let mthread =
    Option.map (fun path -> metrics_listener rt ~path ~stop:mstop)
      metrics_socket
  in
  let finish () =
    Nd_cluster.Router.request_stop rt;
    ignore (Nd_cluster.Router.drain rt);
    Option.iter Thread.join prober;
    mstop := true;
    Option.iter Thread.join mthread;
    close_events ();
    if trace then begin
      let path = Filename.concat dir "router.trace.json" in
      let n = Nd_trace.save_chrome ~path in
      Printf.eprintf "fodb cluster: wrote %d router spans to %s\n%!" n path
    end;
    print_router_stats "fodb cluster" rt
  in
  if not differential then begin
    (try
       let stop _ = Nd_cluster.Router.request_stop rt in
       Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
     with Invalid_argument _ | Sys_error _ -> ());
    (match socket with
    | Some path -> Nd_cluster.Router.serve_socket ~backlog rt ~path
    | None -> Nd_cluster.Router.serve rt stdin stdout);
    finish ()
  end
  else begin
    (* differential mode: replicate scripted mutations through the
       router, optionally kill -9 a worker after the first merged page,
       enumerate everything, and compare byte-for-byte against the
       single-node engine on the same mutated graph *)
    let n = Nd_graph.Cgraph.n g in
    let muts =
      if mutations > 0 && n < 2 then
        Nd_error.user_errorf "cluster: --mutations needs >= 2 vertices"
      else
        List.init mutations (fun i ->
            let u = 2 * i mod n in
            let v = (u + 1 + (i mod (n - 1))) mod n in
            let u, v = if u < v then (u, v) else (v, u) in
            if i mod 2 = 0 then Nd_graph.Cgraph.Add_edge (u, v)
            else Nd_graph.Cgraph.Remove_edge (u, v))
    in
    List.iter
      (fun m ->
        let wire = Nd_graph.Cgraph.mutation_to_string m in
        let reply = Nd_cluster.Router.handle rt ("update " ^ wire) in
        (match reply with
        | l :: _ when String.starts_with ~prefix:"err " l ->
            Nd_error.user_errorf "cluster: update %s refused: %s" wire l
        | _ -> ());
        Nd_engine.update single m)
      muts;
    if muts <> [] then
      Printf.eprintf "fodb cluster: replicated %d mutations (fleet epoch %d)\n%!"
        (List.length muts)
        (Nd_cluster.Router.stats rt).Nd_cluster.Router.fleet_epoch;
    let kill_worker s r =
      if s >= shards || r >= replicas then
        Nd_error.user_errorf "--kill-replica %d:%d: no such replica" s r;
      (* under --supervise the spawned pid is the supervisor; the worker
         to kill -9 announces itself in the replica's log *)
      let pid =
        if not supervise then List.assoc (s, r) !pids
        else begin
          let tag = "worker pid=" in
          let tlen = String.length tag in
          let pid_of line =
            let len = String.length line in
            let rec find i =
              if i + tlen > len then None
              else if String.sub line i tlen = tag then
                int_of_string_opt
                  (String.trim (String.sub line (i + tlen) (len - i - tlen)))
              else find (i + 1)
            in
            find 0
          in
          let last = ref None in
          let ic = open_in (log_path s r) in
          (try
             while true do
               match pid_of (input_line ic) with
               | Some p -> last := Some p
               | None -> ()
             done
           with End_of_file -> close_in ic);
          match !last with
          | Some p -> p
          | None ->
              Nd_error.user_errorf
                "cluster: no worker pid in %s (is --supervise on?)"
                (log_path s r)
        end
      in
      Printf.eprintf "fodb cluster: kill -9 replica %d:%d (pid %d)\n%!" s r
        pid;
      try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
    in
    (* collect every sol line through a handle, retrying unavailable
       pages (the cursor only advances on successful pages, so a retry
       can neither skip nor duplicate) *)
    let collect label handle =
      let sols = ref [] and stalls = ref 0 and pages = ref 0 in
      let rec go () =
        let reply = handle "enumerate 128" in
        let unavailable =
          List.exists (String.starts_with ~prefix:"err unavailable") reply
        in
        if unavailable then begin
          incr stalls;
          if !stalls > 200 then
            Nd_error.user_errorf "cluster: %s enumeration stalled: %s" label
              (String.concat " | " reply);
          Unix.sleepf 0.1;
          go ()
        end
        else begin
          List.iter
            (fun l ->
              if String.starts_with ~prefix:"err " l then
                Nd_error.user_errorf "cluster: %s enumeration failed: %s"
                  label l;
              if String.starts_with ~prefix:"sol " l then sols := l :: !sols)
            reply;
          incr pages;
          let complete =
            List.exists
              (fun l ->
                String.starts_with ~prefix:"end " l
                && String.length l >= 9
                && String.sub l (String.length l - 9) 9 = " complete")
              reply
          in
          if not complete then begin
            (match (kill_replica, !pages) with
            | Some (s, r), 1 when label = "router" -> kill_worker s r
            | _ -> ());
            go ()
          end
        end
      in
      go ();
      List.rev !sols
    in
    let router_sols =
      collect "router" (Nd_cluster.Router.handle rt)
    in
    let srv = Nd_server.create single in
    let single_sols =
      collect "single-node" (Nd_server.handle (Nd_server.session srv))
    in
    let same = router_sols = single_sols in
    finish ();
    Printf.printf
      "cluster differential: %s — %d solutions via %d shards x %d replicas \
       vs %d single-node%s%s%s\n"
      (if same then "OK" else "MISMATCH")
      (List.length router_sols) shards replicas (List.length single_sols)
      (if muts = [] then ""
       else Printf.sprintf ", %d mutations" (List.length muts))
      (match kill_replica with
      | Some (s, r) -> Printf.sprintf ", killed %d:%d" s r
      | None -> "")
      (if chaos_links = [] then ""
       else Printf.sprintf ", %d chaos links" (List.length chaos_links));
    if not same then begin
      let rec diverge i = function
        | a :: xs, b :: ys ->
            if a = b then diverge (i + 1) (xs, ys)
            else Printf.printf "first divergence at %d: %S vs %S\n" i a b
        | a :: _, [] -> Printf.printf "single-node ends at %d; router has %S\n" i a
        | [], b :: _ -> Printf.printf "router ends at %d; single-node has %S\n" i b
        | [], [] -> ()
      in
      diverge 0 (router_sols, single_sols);
      exit 1
    end
  end

(* ---------------- obs ---------------- *)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let obs_merge_trace out files =
 run @@ fun () ->
  if files = [] then Nd_error.user_errorf "merge-trace: no trace shards given";
  let docs =
    List.map
      (fun f ->
        try read_whole f
        with Sys_error m -> Nd_error.user_errorf "merge-trace: %s" m)
      files
  in
  match Nd_obs.Merge.merge docs with
  | Error m -> Nd_error.user_errorf "merge-trace: %s" m
  | Ok (doc, rep) ->
      let oc = open_out out in
      output_string oc doc;
      output_char oc '\n';
      close_out oc;
      Printf.printf
        "merged %d processes, %d events (%d cross-process links, %d orphans) \
         -> %s\n"
        rep.Nd_obs.Merge.r_processes rep.Nd_obs.Merge.r_events
        rep.Nd_obs.Merge.r_linked rep.Nd_obs.Merge.r_orphans out

let obs_scrape socket validate =
 run @@ fun () ->
  let fd =
    match Nd_server.Client.connect socket with
    | Ok fd -> fd
    | Error m -> Nd_error.user_errorf "scrape: %s: %s" socket m
  in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain_fd () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain_fd ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain_fd ()
  in
  drain_fd ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let text = Buffer.contents buf in
  print_string text;
  if validate then
    match Nd_trace.Prometheus.validate text with
    | Ok n -> Printf.eprintf "fodb obs scrape: %d samples, valid\n%!" n
    | Error m -> Nd_error.user_errorf "scrape: invalid exposition: %s" m

(* ---------------- command wiring ---------------- *)

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit" ] ~doc:"Stop after this many solutions.")

let tuple_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "tuple" ] ~docv:"T" ~doc:"Comma-separated vertex tuple.")

let query_args term =
  Term.(
    term $ graph_arg $ query_arg $ colors_arg $ seed_arg $ epsilon_arg
    $ stats_arg $ stats_json_arg $ prometheus_arg $ trace_arg $ budget_ops_arg
    $ timeout_ms_arg $ mutations_arg $ jobs_arg)

let exits =
  Cmd.Exit.info 2 ~doc:"on user errors (bad graph, query or tuple)."
  :: Cmd.Exit.info 3 ~doc:"when a resource budget was exhausted."
  :: Cmd.Exit.info 4 ~doc:"on an internal invariant violation."
  :: Cmd.Exit.defaults

let cmd_enumerate =
  Cmd.v (Cmd.info "enumerate" ~exits ~doc:"Enumerate all solutions in order")
    Term.(query_args (const enumerate) $ limit_arg)

let cmd_count =
  Cmd.v (Cmd.info "count" ~exits ~doc:"Count solutions")
    (query_args Term.(const count))

let cmd_test =
  Cmd.v (Cmd.info "test" ~exits ~doc:"Test whether a tuple is a solution")
    Term.(query_args (const test) $ tuple_arg)

let cmd_next =
  Cmd.v
    (Cmd.info "next" ~exits ~doc:"Smallest solution ≥ a given tuple (Theorem 2.3)")
    Term.(query_args (const next) $ tuple_arg)

let cmd_update =
  Cmd.v
    (Cmd.info "update" ~exits
       ~doc:
         "Absorb graph mutations through the incremental update pipeline \
          (bounded maintenance, no re-prepare) and enumerate over the \
          mutated graph.  Mutations come from $(b,--mutations) and/or \
          positional arguments ($(b,\"add-edge 0 5\") …), applied in order \
          with per-mutation timing.")
    Term.(
      query_args (const update)
      $ Arg.(
          value & pos_all string []
          & info [] ~docv:"MUTATION"
              ~doc:
                "Mutations in wire syntax: $(b,add-edge U V), \
                 $(b,remove-edge U V), $(b,set-color C V on|off).")
      $ limit_arg)

let cmd_cover =
  Cmd.v (Cmd.info "cover" ~doc:"Compute and verify a neighborhood cover")
    Term.(const cover $ graph_arg $ colors_arg $ seed_arg $ radius_arg)

let cmd_splitter =
  Cmd.v (Cmd.info "splitter" ~doc:"Play the splitter game")
    Term.(const splitter $ graph_arg $ colors_arg $ seed_arg $ radius_arg)

let cmd_stats =
  Cmd.v (Cmd.info "stats" ~doc:"Graph sparsity statistics")
    Term.(const stats $ graph_arg $ colors_arg $ seed_arg $ prometheus_arg)

let cmd_profile =
  Cmd.v
    (Cmd.info "profile" ~exits
       ~doc:
         "Empirically check the constant-delay contract (Corollary 2.5): \
          enumerate one zoo family at several sizes and report per-answer \
          delay percentiles in cost-model ops and wall time, with a \
          machine-checkable size-invariance verdict (non-invariant exits 1).")
    Term.(
      const profile
      $ Arg.(
          required
          & opt (some string) None
          & info [ "spec" ] ~docv:"FAMILY"
              ~doc:"Zoo family name (e.g. grid, path, random-tree).")
      $ Arg.(
          value & opt string "200,400,800"
          & info [ "sizes" ] ~docv:"N,N,..."
              ~doc:"Comma-separated instance sizes.")
      $ Arg.(
          value & opt string "dist(x,y) <= 2"
          & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"FO⁺ query to profile.")
      $ Arg.(
          value & opt int 0
          & info [ "colors" ]
              ~doc:"Random colors to add (default 0: none needed).")
      $ Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Coloring seed.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "limit" ] ~docv:"N"
              ~doc:"Answers enumerated per size (default 20000).")
      $ Arg.(
          value & opt float 1.2
          & info [ "tolerance" ] ~docv:"R"
              ~doc:
                "Verdict ratio: max ops-per-answer may vary across sizes by \
                 at most this factor.")
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Emit the nd-profile/1 JSON document only."))

let file_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Snapshot file.")

let warm_arg =
  Arg.(
    value & opt int 0
    & info [ "warm" ] ~docv:"N"
        ~doc:
          "Enumerate this many solutions into the cache before saving, so \
           the snapshot revives a warm store.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Fail (exit 2) when the snapshot is rejected instead of rebuilding \
           from scratch.")

let cmd_snapshot =
  let save =
    Cmd.v
      (Cmd.info "save" ~exits
         ~doc:"Prepare a handle and persist it to a snapshot file")
      Term.(
        const snapshot_save $ graph_arg $ query_arg $ colors_arg $ seed_arg
        $ epsilon_arg $ budget_ops_arg $ timeout_ms_arg $ warm_arg
        $ mutations_arg $ jobs_arg $ file_arg)
  in
  let load =
    Cmd.v
      (Cmd.info "load" ~exits
         ~doc:
           "Verify and revive a snapshot (falling back to a rebuild on any \
            corruption unless $(b,--strict))")
      Term.(
        const snapshot_load $ graph_arg $ query_arg $ colors_arg $ seed_arg
        $ epsilon_arg $ strict_arg
        $ Arg.(
            value & flag
            & info [ "cold" ]
                ~doc:
                  "Skip the warm (memory-mapped store) path and replay the \
                   cache key list instead — same handle, portable speed.")
        $ mutations_arg
        $ Arg.(
            value
            & opt (some string) None
            & info [ "journal" ] ~docv:"FILE"
                ~doc:
                  "Mutation journal recorded since the snapshot was saved: \
                   replayed through the incremental update pipeline after a \
                   successful load (or folded into the graph before a \
                   rebuild).  The $(b,--graph) presented must be the \
                   snapshotted, pre-journal one.")
        $ file_arg)
  in
  let info_cmd =
    Cmd.v
      (Cmd.info "info" ~exits
         ~doc:"Verify a snapshot's checksums and print its metadata")
      Term.(const snapshot_info $ file_arg)
  in
  Cmd.group
    (Cmd.info "snapshot" ~exits
       ~doc:"Crash-safe persistence of prepared handles")
    [ save; load; info_cmd ]

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Serve over a Unix-domain socket instead of stdin/stdout.")

let request_budget_ops_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "request-budget-ops" ] ~docv:"N"
        ~doc:
          "Cost-model operation ceiling installed around every single \
           request; exhaustion yields an $(b,err budget) reply, never a \
           dead loop.")

let request_timeout_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "request-timeout-ms" ] ~docv:"N"
        ~doc:"Per-request wall-clock deadline in milliseconds.")

let max_enumerate_arg =
  Arg.(
    value & opt int 1000
    & info [ "max-enumerate" ] ~docv:"N"
        ~doc:"Page-size cap (and default) for the enumerate command.")

let chaos_arg =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "Accept the $(b,inject) fault command (test/CI use: prove the \
           loop survives internal failures).")

let backlog_arg =
  Arg.(
    value
    & opt int Nd_server.default_backlog
    & info [ "backlog" ] ~docv:"N"
        ~doc:
          "Kernel listen-queue depth for $(b,--socket) mode (default 64): \
           connection bursts up to this size are queued by the kernel \
           instead of refused.")

let cmd_serve =
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Answer next/test/enumerate requests over a line protocol with \
          per-request budgets, full request isolation, admission control \
          and connection hygiene")
    Term.(
      const serve $ graph_arg $ query_arg $ colors_arg $ seed_arg
      $ epsilon_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "snapshot" ] ~docv:"FILE"
              ~doc:
                "Load the prepared handle from this snapshot (rebuilding on \
                 any corruption) instead of preparing from scratch.")
      $ socket_arg $ backlog_arg $ request_budget_ops_arg
      $ request_timeout_ms_arg $ max_enumerate_arg $ chaos_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "event-log" ] ~docv:"FILE"
              ~doc:
                "Append one structured JSON line per handled request \
                 (request id, span id, verb, status, latency).")
      $ Arg.(
          value & flag
          & info [ "no-metrics" ]
              ~doc:
                "Do not enable cost-model instrumentation (the `metrics` \
                 verb then reports zeros).")
      $ trace_arg $ jobs_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-inflight" ] ~docv:"N"
              ~doc:
                "Admission gate: requests past the gate at once; further \
                 requests are shed with $(b,err overloaded) instead of \
                 queueing unboundedly.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-conns" ] ~docv:"N"
              ~doc:
                "Connection gate: live connections at once; accepted \
                 connections over the limit are refused with \
                 $(b,err overloaded) + $(b,bye).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "io-timeout-ms" ] ~docv:"N"
              ~doc:
                "Hygiene: max milliseconds a started request line may take \
                 to arrive (slow-loris guard) and the write deadline per \
                 reply; violation yields $(b,err user) and the connection \
                 closes.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "idle-timeout-ms" ] ~docv:"N"
              ~doc:
                "Hygiene: max milliseconds a connection may sit idle between \
                 requests before the reaper closes it with $(b,bye).")
      $ Arg.(
          value & opt int 65536
          & info [ "max-line-bytes" ] ~docv:"N"
              ~doc:
                "Hygiene: longest accepted request line (default 65536); \
                 longer lines get $(b,err user) and the connection closes.")
      $ Arg.(
          value & opt int 100
          & info [ "retry-after-ms" ] ~docv:"N"
              ~doc:
                "Floor advertised in $(b,err overloaded) replies \
                 (default 100).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "journal" ] ~docv:"FILE"
              ~doc:
                "Recovery journal: append every applied mutation in wire \
                 syntax, and replay the file before serving — a restarted \
                 worker (see $(b,--supervise)) resumes at the pre-crash \
                 epoch.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "blackbox" ] ~docv:"DIR"
              ~doc:
                "Crash flight recorder: mirror the last 256 request events \
                 to $(docv)/NAME.flight.jsonl (NAME from the socket path); \
                 under $(b,--supervise), an abnormal worker exit is \
                 harvested into $(docv)/NAME.postmortem-K.jsonl carrying \
                 the crash cause, the restart decision and the last \
                 recorded epoch.")
      $ Arg.(
          value & opt int 0
          & info [ "shard-index" ] ~docv:"S"
              ~doc:
                "Cluster mode: serve only the solutions shard $(docv) \
                 owns under the boot graph's cover-bag partition (see \
                 $(b,fodb router)).  Requires $(b,--shard-count).")
      $ Arg.(
          value & opt int 1
          & info [ "shard-count" ] ~docv:"N"
              ~doc:
                "Cluster mode: total shards in the fleet (default 1 = \
                 serve everything).")
      $ Arg.(
          value & flag
          & info [ "supervise" ]
              ~doc:
                "Run the serve loop in a worker process under a \
                 restart-on-crash supervisor with exponential backoff and a \
                 crash-count circuit breaker.  Pair with $(b,--snapshot) \
                 and/or $(b,--journal) so restarted workers recover their \
                 epoch.")
      $ Arg.(
          value & opt int 5
          & info [ "max-crashes" ] ~docv:"N"
              ~doc:
                "Supervisor circuit breaker: give up after this many crashes \
                 within the restart window (default 5).")
      $ Arg.(
          value & opt int 100
          & info [ "restart-backoff-ms" ] ~docv:"N"
              ~doc:
                "Supervisor: backoff cap before the first restart, doubling \
                 per crash up to 5s (default 100).")
      $ Arg.(
          value & opt int 30000
          & info [ "restart-window-ms" ] ~docv:"N"
              ~doc:
                "Supervisor: sliding window for the circuit breaker \
                 (default 30000); crashes older than this are forgiven."))

let cmd_chaos_proxy =
  Cmd.v
    (Cmd.info "chaos-proxy" ~exits
       ~doc:
         "Deterministic socket-level fault injection between a client and a \
          $(b,fodb serve --socket) server: slow-loris byte trickle, partial \
          writes, injected garbage, and mid-request/mid-reply disconnects.  \
          Runs until SIGINT/SIGTERM.")
    Term.(
      const chaos_proxy
      $ Arg.(
          required
          & opt (some string) None
          & info [ "listen" ] ~docv:"PATH"
              ~doc:"Unix-domain socket to listen on (clients connect here).")
      $ Arg.(
          required
          & opt (some string) None
          & info [ "upstream" ] ~docv:"PATH"
              ~doc:"The real server's Unix-domain socket.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "chunk" ] ~docv:"N"
              ~doc:
                "Forward client bytes at most N at a time (1 = \
                 byte-at-a-time partial writes).")
      $ Arg.(
          value & opt int 0
          & info [ "delay-ms" ] ~docv:"N"
              ~doc:
                "Sleep N ms before each forwarded client chunk (with \
                 $(b,--chunk 1): slow-loris).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "garbage" ] ~docv:"BYTES"
              ~doc:
                "Inject these bytes toward the server before the client's \
                 first real byte.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "cut-after" ] ~docv:"N"
              ~doc:
                "Hard-close both directions after forwarding N \
                 client-to-server bytes (mid-request disconnect).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "cut-reply-after" ] ~docv:"N"
              ~doc:
                "Hard-close after N server-to-client bytes (mid-reply \
                 disconnect)."))

let shards_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shards in the fleet.  The partition is derived from the \
           $(i,boot) graph's neighborhood cover (home bags dealt \
           round-robin), so every process computes the same map.")

let probe_interval_arg default =
  Arg.(
    value & opt int default
    & info [ "probe-interval-ms" ] ~docv:"N"
        ~doc:
          "Background health/epoch probe period; fences lagging \
           replicas, replays them the missing journal suffix and \
           readmits them at the fleet epoch.  0 disables the timer.")

let no_fence_arg =
  Arg.(
    value & flag
    & info [ "no-fence" ]
        ~doc:
          "Disable per-request epoch fencing (the probe-overhead bench \
           arm; unsafe under mutation).")

let cmd_router =
  Cmd.v
    (Cmd.info "router" ~exits
       ~doc:
         "Serve the merged line protocol over already-running shard \
          workers: duplicate-free ascending k-way merge of the \
          per-shard streams, epoch fencing (mixed-epoch merges are \
          refused; lagging replicas are fenced, caught up by journal \
          replay and readmitted), failover with full-jitter backoff, \
          and structured $(b,err unavailable) degradation.")
    Term.(
      const router $ graph_arg $ query_arg $ colors_arg $ seed_arg
      $ shards_arg
      $ Arg.(
          value
          & opt_all string []
          & info [ "endpoint" ] ~docv:"S:PATH"
              ~doc:
                "A replica: shard id and the Unix-domain socket path of \
                 a $(b,fodb serve --shard-index S) worker.  Repeatable; \
                 every shard needs at least one.")
      $ socket_arg $ backlog_arg $ probe_interval_arg 1000 $ no_fence_arg
      $ Arg.(
          value & opt int 100
          & info [ "retry-after-ms" ] ~docv:"N"
              ~doc:
                "Floor advertised in $(b,err unavailable) replies \
                 (default 100).")
      $ max_enumerate_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "event-log" ] ~docv:"FILE"
              ~doc:
                "Append one structured JSON line per handled request \
                 plus fence/catch-up/failover/probe lifecycle rows.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "metrics-socket" ] ~docv:"PATH"
              ~doc:
                "Serve the aggregated fleet Prometheus exposition on this \
                 Unix-domain socket: each connection receives one merged \
                 scrape (router registry, fleet gauges, per-shard pull \
                 histograms, every live replica re-labelled with \
                 shard/replica) and is closed.  Read it with \
                 $(b,fodb obs scrape).")
      $ trace_arg)

let cmd_cluster =
  Cmd.v
    (Cmd.info "cluster" ~exits
       ~doc:
         "Launch a whole fleet locally — shards x replicas worker \
          processes bootstrapped from a shared snapshot with per-worker \
          journals, optional supervisors and chaos-proxied links — and \
          run the router over it; with $(b,--differential), enumerate \
          through the router (replicating mutations, optionally \
          $(b,kill -9)-ing a worker mid-enumeration) and compare \
          byte-for-byte against a single-node engine.")
    Term.(
      const cluster $ graph_arg $ query_arg $ colors_arg $ seed_arg
      $ epsilon_arg $ shards_arg
      $ Arg.(
          value & opt int 1
          & info [ "replicas" ] ~docv:"R"
              ~doc:"Replicas per shard (default 1).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "dir" ] ~docv:"D"
              ~doc:
                "Working directory for sockets, snapshot, journals and \
                 worker logs (default: a fresh directory under the \
                 system temp dir, printed on stderr).")
      $ socket_arg $ backlog_arg
      $ Arg.(
          value & flag
          & info [ "supervise" ]
              ~doc:
                "Run each worker under the restart-on-crash supervisor, \
                 so a $(b,kill -9)'d worker revives from the snapshot \
                 plus its journal.")
      $ Arg.(
          value & flag
          & info [ "differential" ]
              ~doc:
                "Enumerate the whole answer set through the router, \
                 compare against a single-node engine on the same \
                 graph, print a verdict and exit 1 on mismatch.")
      $ Arg.(
          value & opt int 0
          & info [ "mutations" ] ~docv:"M"
              ~doc:
                "Differential mode: replicate this many scripted \
                 mutations through the router first; the single-node \
                 reference gets the same mutations.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "kill-replica" ] ~docv:"S:R"
              ~doc:
                "Differential mode: $(b,kill -9) this replica's worker \
                 after the first merged page; with $(b,--supervise) the \
                 restarted worker recovers via snapshot + journal and \
                 is readmitted at the fleet epoch.")
      $ probe_interval_arg 200 $ no_fence_arg
      $ Arg.(
          value
          & opt_all string []
          & info [ "chaos-link" ] ~docv:"S:R"
              ~doc:
                "Interpose a chaos proxy on this router-to-replica \
                 link (repeatable); profile from the $(b,--chaos-*) \
                 flags.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "chaos-chunk" ] ~docv:"N"
              ~doc:"Chaos links: forward at most N bytes at a time.")
      $ Arg.(
          value & opt int 0
          & info [ "chaos-delay-ms" ] ~docv:"N"
              ~doc:"Chaos links: sleep N ms before each forwarded chunk.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "chaos-garbage" ] ~docv:"BYTES"
              ~doc:
                "Chaos links: inject these bytes toward the worker \
                 before the first real byte of each connection.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "chaos-cut-reply-after" ] ~docv:"N"
              ~doc:
                "Chaos links: hard-close each connection after N \
                 worker-to-router bytes.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "event-log" ] ~docv:"FILE"
              ~doc:
                "Append the router's structured JSON event rows here.")
      $ Arg.(
          value & flag
          & info [ "trace" ]
              ~doc:
                "Enable span tracing fleet-wide: every worker writes \
                 $(b,DIR/w-S-R.trace.json) on clean shutdown and the \
                 router writes $(b,DIR/router.trace.json); stitch them \
                 with $(b,fodb obs merge-trace).")
      $ Arg.(
          value & flag
          & info [ "blackbox" ]
              ~doc:
                "Give every worker a crash flight recorder in the cluster \
                 directory (see $(b,fodb serve --blackbox)); pair with \
                 $(b,--supervise) for post-mortems.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "metrics-socket" ] ~docv:"PATH"
              ~doc:
                "Serve the aggregated fleet Prometheus exposition on this \
                 Unix-domain socket (see $(b,fodb router \
                 --metrics-socket))."))

let cmd_obs =
  let merge =
    Cmd.v
      (Cmd.info "merge-trace" ~exits
         ~doc:
           "Stitch per-process Chrome trace shards (router + workers) into \
            one cross-process timeline: span ids are remapped into a global \
            namespace and every propagated $(b,trace=) context is resolved \
            into a parent edge across its process boundary (unresolved \
            references are flagged $(b,ctx.orphan), never dropped).")
      Term.(
        const obs_merge_trace
        $ Arg.(
            required
            & opt (some string) None
            & info [ "o"; "out" ] ~docv:"FILE"
                ~doc:"Merged trace output file.")
        $ Arg.(
            value & pos_all string []
            & info [] ~docv:"SHARD" ~doc:"Per-process trace shard files."))
  in
  let scrape =
    Cmd.v
      (Cmd.info "scrape" ~exits
         ~doc:
           "Read one aggregated Prometheus exposition from a \
            $(b,--metrics-socket) listener ($(b,fodb router) or \
            $(b,fodb cluster)) and print it.")
      Term.(
        const obs_scrape
        $ Arg.(
            required
            & opt (some string) None
            & info [ "socket" ] ~docv:"PATH" ~doc:"Metrics socket path.")
        $ Arg.(
            value & flag
            & info [ "validate" ]
                ~doc:
                  "Validate the exposition format (exit 2 when invalid)."))
  in
  Cmd.group
    (Cmd.info "obs" ~exits
       ~doc:
         "Fleet observability: merged cross-process traces and aggregated \
          metrics")
    [ merge; scrape ]

let cmd_client =
  Cmd.v
    (Cmd.info "client" ~exits
       ~doc:
         "Connect to a running $(b,fodb serve --socket) server, send \
          requests and print the replies.  Requests come from the \
          positional arguments (one request line each, sent in order) or, \
          when none are given, one per line from stdin.  Transient \
          $(b,err budget) replies are retried with exponential backoff; \
          a $(b,bye) terminator ends the session.")
    Term.(
      const client
      $ Arg.(
          required
          & opt (some string) None
          & info [ "socket" ] ~docv:"PATH"
              ~doc:"Unix-domain socket path the server listens on.")
      $ Arg.(
          value & pos_all string []
          & info [] ~docv:"REQUEST"
              ~doc:
                "Request lines in the serve protocol ($(b,\"next 0,0\"), \
                 $(b,enumerate 5), $(b,epoch), $(b,quit) …)."))

let () =
  let doc = "FO query enumeration over nowhere dense graphs" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "fodb" ~doc)
          [
            cmd_enumerate; cmd_count; cmd_test; cmd_next; cmd_update;
            cmd_cover; cmd_splitter; cmd_stats; cmd_profile; cmd_snapshot;
            cmd_serve; cmd_router; cmd_cluster; cmd_client; cmd_chaos_proxy;
            cmd_obs;
          ]))
