(* Quickstart: build a colored graph, write an FO⁺ query, prepare the
   engine once, then enumerate answers with constant delay, test tuples
   in constant time, and read the cost-model instrumentation.

   Run with:  dune exec examples/quickstart.exe *)

open Nd_graph
open Nd_logic

let () =
  (* A 10-cycle where even vertices are "blue" (color 0). *)
  let n = 10 in
  let blue = Nd_util.Bitset.create n in
  List.iter (fun v -> Nd_util.Bitset.add blue v)
    (List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id));
  let g =
    Cgraph.create ~n ~colors:[| blue |]
      ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))
  in
  Printf.printf "graph: %d vertices, %d edges\n" (Cgraph.n g) (Cgraph.m g);

  (* "Blue vertices at distance greater than 2 from x." *)
  let query = Parse.formula ~colors:[ ("Blue", 0) ] "dist(x,y) > 2 & Blue(y)" in
  Printf.printf "query: %s\n\n" (Fo.to_string query);

  (* One preparation call runs the whole pipeline of Theorem 2.3
     (pseudo-linear in |G|); ~metrics:true turns the cost-model
     probes on. *)
  let eng = Nd_engine.prepare ~metrics:true g query in

  (* Enumeration (Corollary 2.5): constant delay, lexicographic order. *)
  print_endline "all solutions, in order:";
  Nd_engine.enumerate
    (fun sol -> Printf.printf "  (x=%d, y=%d)\n" sol.(0) sol.(1))
    eng;

  (* Testing (Corollary 2.4): constant time per tuple. *)
  Printf.printf "\nis (0,5) a solution? %b\n" (Nd_engine.test eng [| 0; 5 |]);
  Printf.printf "is (0,2) a solution? %b\n" (Nd_engine.test eng [| 0; 2 |]);

  (* Theorem 2.3 proper: the smallest solution ≥ a given tuple. *)
  (match Nd_engine.next eng [| 4; 0 |] with
  | Some sol ->
      Printf.printf "smallest solution ≥ (4,0): (%d,%d)\n" sol.(0) sol.(1)
  | None -> print_endline "no solution ≥ (4,0)");

  (* Count without materializing. *)
  Printf.printf "total solutions: %d\n"
    (Nd_engine.count eng).Nd_core.Count.count;

  (* The instrumentation the engine gathered along the way. *)
  let st = Nd_engine.stats eng in
  Printf.printf
    "\nobserved: %d solutions emitted, max enumeration delay %d ops,\n\
    \  solution cache %d keys%s\n"
    st.Nd_engine.Stats.solutions_emitted st.Nd_engine.Stats.max_delay_ops
    st.Nd_engine.Stats.cache_size
    (if st.Nd_engine.Stats.cache_complete then " (complete)" else "")
