(* Relational databases through the colored-graph reduction of
   Section 2: build a database, encode it as A'(D), translate queries
   with Lemma 2.2, and run the enumeration machinery.

   Run with:  dune exec examples/relational_db.exe                     *)

open Nd_graph
module T = Nd_eval.Translate

let () =
  (* A tiny flight database: airports (elements 0..5), Flight(a,b),
     Hub(a). *)
  let airports = [| "CDG"; "JFK"; "NRT"; "TXL"; "LIS"; "GIG" |] in
  let db =
    Rel.create_db
      [ ("Flight", 2); ("Hub", 1) ]
      ~domain:6
      [
        ( "Flight",
          [
            [| 0; 1 |]; [| 1; 0 |]; [| 0; 3 |]; [| 3; 0 |]; [| 1; 2 |];
            [| 0; 4 |]; [| 4; 5 |]; [| 5; 1 |];
          ] );
        ("Hub", [ [| 0 |]; [| 1 |] ]);
      ]
  in
  Printf.printf "database: %d airports, %d flights\n\n" (Rel.domain_size db)
    (List.length (Rel.tuples db "Flight"));

  (* Encode as a colored graph (the 1-subdivision of the adjacency
     graph, Section 2). *)
  let e = Rel.encode db in
  Printf.printf "A'(D): %d vertices, %d edges, %d colors\n\n"
    (Cgraph.n e.Rel.graph) (Cgraph.m e.Rel.graph)
    (Cgraph.color_count e.Rel.graph);

  (* One-stop connections that are not direct: classic join + negation. *)
  let one_stop =
    T.And
      [
        T.Exists
          ( "z",
            T.And [ T.Atom ("Flight", [ "x"; "z" ]); T.Atom ("Flight", [ "z"; "y" ]) ]
          );
        T.Not (T.Atom ("Flight", [ "x"; "y" ]));
        T.Not (T.Eq ("x", "y"));
      ]
  in
  let psi = T.translate (Rel.schema db) one_stop in
  Printf.printf "Lemma 2.2 translation has %d AST nodes (q-rank %d)\n"
    (Nd_logic.Fo.size psi) (Nd_logic.Fo.qrank psi);
  let eng = Nd_engine.prepare e.Rel.graph psi in
  print_endline "one-stop-only connections:";
  Nd_engine.enumerate
    (fun s -> Printf.printf "  %s -> %s\n" airports.(s.(0)) airports.(s.(1)))
    eng;

  (* Cross-check against direct evaluation over the database. *)
  let direct = T.eval_all_db db one_stop in
  let via_graph = Nd_engine.to_list eng in
  Printf.printf "\ndirect db evaluation agrees: %b\n" (direct = via_graph);

  (* A query mixing both relations. *)
  let reachable_hub =
    T.And
      [
        T.Atom ("Flight", [ "x"; "y" ]);
        T.Atom ("Hub", [ "y" ]);
      ]
  in
  let eng2 =
    Nd_engine.prepare e.Rel.graph (T.translate (Rel.schema db) reachable_hub)
  in
  print_endline "\ndirect flights into a hub:";
  Nd_engine.enumerate
    (fun s -> Printf.printf "  %s -> %s\n" airports.(s.(0)) airports.(s.(1)))
    eng2
