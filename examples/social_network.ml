(* Social-network scenario — the kind of workload the paper's
   introduction motivates: a large sparse graph where we want query
   answers streamed on demand rather than materialized.

   The graph is a random bounded-degree "friendship" network (bounded
   degree ⊂ bounded expansion ⊂ nowhere dense).  Colors:
     0 = plays chess, 1 = speaks OCaml, 2 = verified account.

   Run with:  dune exec examples/social_network.exe -- [n]            *)

open Nd_graph
open Nd_logic

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20_000
  in
  let g =
    Gen.randomly_color ~seed:1 ~colors:3
      (Gen.bounded_degree ~seed:1 n ~max_degree:6)
  in
  Printf.printf "social network: %d members, %d friendships\n\n" (Cgraph.n g)
    (Cgraph.m g);
  let colors = [ ("Chess", 0); ("Ocaml", 1); ("Verified", 2) ] in

  (* Friend-of-friend recommendation: y is two hops away, not already a
     friend, and shares the chess interest with x. *)
  let reco =
    Parse.formula ~colors
      "(exists z. E(x,z) & E(z,y)) & ~E(x,y) & x != y & Chess(x) & Chess(y)"
  in
  Printf.printf "query: %s\n" (Fo.to_string reco);
  let eng, prep = time (fun () -> Nd_engine.prepare ~metrics:true g reco) in
  Printf.printf "preprocessing: %.3fs\n" prep;
  let sols, t_first10 = time (fun () -> Nd_engine.to_list ~limit:10 eng) in
  Printf.printf "first 10 recommendations (%.6fs):\n" t_first10;
  List.iter (fun s -> Printf.printf "  %d -> %d\n" s.(0) s.(1)) sols;

  (* Testing: constant-time membership checks. *)
  let rng = Random.State.make [| 42 |] in
  let probes =
    List.init 5 (fun _ -> [| Random.State.int rng n; Random.State.int rng n |])
  in
  let _, t_tests =
    time (fun () -> List.iter (fun p -> ignore (Nd_engine.test eng p)) probes)
  in
  Printf.printf "\n5 membership tests took %.6fs total\n" t_tests;

  (* A "far-away" query exercising the skip-pointer machinery (Case I):
     verified OCaml speakers outside x's 2-neighborhood. *)
  let far = Parse.formula ~colors "dist(x,y) > 2 & Ocaml(y) & Verified(y)" in
  Printf.printf "\nquery: %s\n" (Fo.to_string far);
  Nd_engine.reset_metrics ();
  let eng2, prep2 = time (fun () -> Nd_engine.prepare ~metrics:true g far) in
  Printf.printf "preprocessing: %.3fs\n" prep2;
  (* stream a few answers for a handful of specific members *)
  List.iter
    (fun x ->
      match Nd_engine.next eng2 [| x; 0 |] with
      | Some s when s.(0) = x ->
          Printf.printf "  first match for member %d: %d\n" x s.(1)
      | _ -> Printf.printf "  member %d: no match\n" x)
    [ 0; 1; 2; 3 ];
  let st = Nd_engine.stats eng2 in
  let counter name =
    match List.assoc_opt name st.Nd_engine.Stats.counters with
    | Some v -> v
    | None -> 0
  in
  Printf.printf
    "answer-phase work: %d scan steps, %d skip queries, %d distance tests\n"
    (counter "answer.scan_steps")
    (counter "answer.skip_queries")
    (counter "dist.tests")
