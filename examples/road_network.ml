(* Road-network scenario: a planar(-ish) street grid with colored
   points of interest.  Planar graphs exclude K_5 as a minor, hence are
   nowhere dense; the paper's machinery applies directly.

   Colors: 0 = hospital, 1 = fuel station, 2 = residential.

   Run with:  dune exec examples/road_network.exe -- [side]           *)

open Nd_util
open Nd_graph
open Nd_logic

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let side = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 60 in
  let base = Gen.planar_grid ~seed:7 side side in
  let n = Cgraph.n base in
  (* sprinkle points of interest deterministically *)
  let rng = Random.State.make [| 99 |] in
  let hospital = Bitset.create n and fuel = Bitset.create n and home = Bitset.create n in
  for v = 0 to n - 1 do
    let roll = Random.State.int rng 100 in
    if roll < 2 then Bitset.add hospital v
    else if roll < 8 then Bitset.add fuel v
    else if roll < 50 then Bitset.add home v
  done;
  let g =
    Cgraph.create ~n
      ~colors:[| hospital; fuel; home |]
      (Cgraph.fold_edges (fun u v acc -> (u, v) :: acc) base [])
  in
  let colors = [ ("Hospital", 0); ("Fuel", 1); ("Home", 2) ] in
  Printf.printf "road network: %d junctions, %d segments; %d hospitals, %d fuel, %d homes\n\n"
    n (Cgraph.m g) (Bitset.cardinal hospital) (Bitset.cardinal fuel)
    (Bitset.cardinal home);

  (* Emergency coverage: homes with a hospital within 4 hops. *)
  let covered =
    Parse.formula ~colors "Home(x) & Hospital(y) & dist(x,y) <= 4"
  in
  Printf.printf "query: %s\n" (Fo.to_string covered);
  let eng, prep = time (fun () -> Nd_engine.prepare g covered) in
  let count, t_enum = time (fun () -> Nd_engine.count_enumerated eng) in
  Printf.printf "preprocessing %.3fs; %d (home,hospital) pairs enumerated in %.3fs\n\n"
    prep count t_enum;

  (* Fuel deserts: homes with no fuel station within 3 hops — a
     universally quantified, co-guarded query. *)
  let desert =
    Parse.formula ~colors "Home(x) & (forall y. dist(x,y) > 3 | ~Fuel(y))"
  in
  Printf.printf "query: %s\n" (Fo.to_string desert);
  let eng2, prep2 = time (fun () -> Nd_engine.prepare g desert) in
  let deserts, t2 = time (fun () -> Nd_engine.count_enumerated eng2) in
  Printf.printf "preprocessing %.3fs; %d fuel deserts found in %.3fs\n\n" prep2
    deserts t2;

  (* Compare against the naive evaluator on the same query (the
     baseline the paper's data structures beat). *)
  if n <= 4000 then begin
    let ctx = Nd_eval.Naive.ctx g in
    let naive, t_naive =
      time (fun () ->
          List.length (Nd_eval.Naive.eval_all ctx ~vars:[ "x" ] desert))
    in
    Printf.printf "naive evaluation: %d deserts in %.3fs (%.1fx slower)\n" naive
      t_naive
      (t_naive /. max 1e-9 (prep2 +. t2))
  end
