# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full experiment suite (slow); `--quick` via BENCH_ARGS="--quick".
bench:
	dune exec bench/main.exe -- $(BENCH_ARGS)

# Minimal engine benchmark: writes BENCH_engine.json and validates it
# against the nd-engine-bench/1 schema.  Used by CI.
bench-smoke:
	dune exec bench/main.exe -- --smoke
	dune exec bench/check_schema.exe BENCH_engine.json

clean:
	dune clean
