(* The Nd_engine façade: differential checks against the naive
   evaluator across all three query modes, solution-cache soundness
   (answers served from the Theorem 3.1 store must agree with the live
   pipeline), sentence handling, and stats sanity. *)

open Nd_graph
open Nd_logic

let queries =
  [
    "dist(x,y) <= 2";
    "E(x,y) & C0(y)";
    "dist(x,y) > 2 & C1(y)";
    "C0(x) & (exists z. E(x,z) & C1(z))";
    "E(x,y) & dist(y,z) <= 1 & C0(z)";
  ]

let graph () = Gen.randomly_color ~seed:11 ~colors:2 (Gen.planar_grid ~seed:4 5 5)

let test_matches_naive () =
  let g = graph () in
  let ctx = Nd_eval.Naive.ctx g in
  List.iter
    (fun q ->
      let phi = Parse.formula q in
      let expected = Nd_eval.Naive.eval_all ctx ~vars:(Fo.free_vars phi) phi in
      let eng = Nd_engine.prepare g phi in
      Alcotest.(check bool) (q ^ " to_list") true
        (Nd_engine.to_list eng = expected);
      Alcotest.(check int)
        (q ^ " count_enumerated")
        (List.length expected)
        (Nd_engine.count_enumerated eng);
      Alcotest.(check bool) (q ^ " holds") (expected <> [])
        (Nd_engine.holds eng))
    queries

(* After a full enumeration the cache is complete; [next] and [test]
   are then served by Store.succ_geq / Store.find.  They must agree
   with a cache-less engine over every input tuple. *)
let test_cache_agrees_with_live () =
  let g = graph () in
  let n = Cgraph.n g in
  List.iter
    (fun q ->
      let phi = Parse.formula q in
      let cached = Nd_engine.prepare g phi in
      let live = Nd_engine.prepare ~cache_limit:0 g phi in
      let total = Nd_engine.count_enumerated cached in
      Alcotest.(check bool) (q ^ " cache complete") true
        (Nd_engine.cache_complete cached);
      Alcotest.(check int) (q ^ " cache size") total
        (Nd_engine.cache_size cached);
      Alcotest.(check int) (q ^ " live cache stays empty") 0
        (Nd_engine.cache_size live);
      let k = Nd_engine.arity cached in
      let rng = Random.State.make [| 42 |] in
      for _ = 1 to 200 do
        let t = Array.init k (fun _ -> Random.State.int rng n) in
        if Nd_engine.next cached t <> Nd_engine.next live t then
          Alcotest.failf "%s: cached next diverges on input" q;
        if Nd_engine.test cached t <> Nd_engine.test live t then
          Alcotest.failf "%s: cached test diverges on input" q
      done)
    [ "dist(x,y) <= 2"; "E(x,y) & C0(y)"; "dist(x,y) > 2 & C1(y)" ]

(* Partial enumeration advances the frontier; queries beyond it must
   transparently fall through to the live pipeline. *)
let test_partial_frontier () =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare g phi in
  let live = Nd_engine.prepare ~cache_limit:0 g phi in
  let all = Nd_engine.to_list live in
  let prefix = Nd_engine.to_list ~limit:7 eng in
  Alcotest.(check int) "prefix length" 7 (List.length prefix);
  Alcotest.(check bool) "not complete yet" false (Nd_engine.cache_complete eng);
  (* full agreement from every prior solution onward, cached or not *)
  List.iter
    (fun s ->
      if Nd_engine.next eng s <> Nd_engine.next live s then
        Alcotest.fail "partial cache diverges")
    all;
  Alcotest.(check bool) "full seq agrees" true (Nd_engine.to_list eng = all)

let test_cache_limit_respected () =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare ~cache_limit:5 g phi in
  let total = Nd_engine.count_enumerated eng in
  Alcotest.(check bool) "has more solutions than limit" true (total > 5);
  Alcotest.(check bool) "cache capped" true (Nd_engine.cache_size eng <= 5);
  Alcotest.(check bool) "capped cache never complete" false
    (Nd_engine.cache_complete eng)

let test_sentences () =
  let g = graph () in
  let yes = Parse.formula "exists x y. E(x,y) & dist(x,y) <= 1" in
  let no = Parse.formula "exists x. E(x,x)" in
  let ey = Nd_engine.prepare g yes and en = Nd_engine.prepare g no in
  Alcotest.(check int) "sentence arity" 0 (Nd_engine.arity ey);
  Alcotest.(check bool) "true sentence holds" true (Nd_engine.holds ey);
  Alcotest.(check bool) "false sentence fails" false (Nd_engine.holds en);
  Alcotest.(check int) "true sentence: one empty tuple" 1
    (List.length (Nd_engine.to_list ey));
  Alcotest.(check int) "false sentence: no tuples" 0
    (List.length (Nd_engine.to_list en));
  Alcotest.(check bool) "test [||]" true (Nd_engine.test ey [||]);
  Alcotest.(check bool) "next [||]" true (Nd_engine.next ey [||] = Some [||])

let test_input_validation () =
  let g = graph () in
  let eng = Nd_engine.prepare g (Parse.formula "E(x,y)") in
  (match Nd_engine.next eng [| 0 |] with
  | exception Nd_error.User_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted");
  (match Nd_engine.next eng [| 0; Cgraph.n g |] with
  | exception Nd_error.User_error _ -> ()
  | _ -> Alcotest.fail "out-of-range vertex accepted");
  (match Nd_engine.test eng [| 0; -1 |] with
  | exception Nd_error.User_error _ -> ()
  | _ -> Alcotest.fail "negative vertex accepted by test");
  (* sentences validate through the same taxonomy as queries *)
  let sent = Nd_engine.prepare g (Parse.formula "exists x y. E(x,y)") in
  match Nd_engine.next sent [| 0 |] with
  | exception Nd_error.User_error _ -> ()
  | _ -> Alcotest.fail "sentence accepted a non-empty tuple"

let test_stats_sanity () =
  Nd_engine.reset_metrics ();
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare ~metrics:true g phi in
  let total = Nd_engine.count_enumerated eng in
  let s = Nd_engine.stats eng in
  Nd_util.Metrics.disable ();
  Alcotest.(check int) "stats.n" (Cgraph.n g) s.Nd_engine.Stats.n;
  Alcotest.(check int) "stats.m" (Cgraph.m g) s.Nd_engine.Stats.m;
  Alcotest.(check int) "solutions_emitted" total
    s.Nd_engine.Stats.solutions_emitted;
  Alcotest.(check bool) "metrics on" true s.Nd_engine.Stats.metrics_enabled;
  Alcotest.(check bool) "ops recorded" true (s.Nd_engine.Stats.ops > 0);
  Alcotest.(check bool) "max delay observed" true
    (s.Nd_engine.Stats.max_delay_ops > 0);
  Alcotest.(check bool) "phases recorded" true
    (List.mem_assoc "engine.prepare" s.Nd_engine.Stats.phases);
  Alcotest.(check bool) "delay histogram present" true
    (List.mem_assoc "enum.delay_ops" s.Nd_engine.Stats.hists);
  (* the JSON emitter must at least produce the schema marker and
     balanced braces for downstream tooling *)
  let js = Nd_engine.Stats.to_json s in
  Alcotest.(check bool) "json has schema tag" true
    (let sub = "\"schema\":\"nd-engine-stats/1\"" in
     let rec find i =
       i + String.length sub <= String.length js
       && (String.sub js i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  let depth = ref 0 in
  String.iter
    (fun c -> if c = '{' then incr depth else if c = '}' then decr depth)
    js;
  Alcotest.(check int) "json braces balanced" 0 !depth

let suite =
  [
    Alcotest.test_case "engine = naive on all modes" `Quick test_matches_naive;
    Alcotest.test_case "cache agrees with live pipeline" `Quick
      test_cache_agrees_with_live;
    Alcotest.test_case "partial frontier falls through" `Quick
      test_partial_frontier;
    Alcotest.test_case "cache limit respected" `Quick
      test_cache_limit_respected;
    Alcotest.test_case "sentences" `Quick test_sentences;
    Alcotest.test_case "input validation" `Quick test_input_validation;
    Alcotest.test_case "stats sanity + json" `Quick test_stats_sanity;
  ]
