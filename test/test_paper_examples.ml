(* The paper's running examples, as executable checks. *)

open Nd_graph
open Nd_logic

(* Example 1-A: the distance-two query
   q(x,y) := dist≤2(x,y) = ∃z (E(x,z) ∧ E(z,y)) ∨ E(x,y) ∨ x = y. *)
let test_example_1a () =
  let g = Gen.randomly_color ~seed:1 ~colors:1 (Gen.grid 6 6) in
  let ctx = Nd_eval.Naive.ctx g in
  let unfolded =
    Parse.formula "(exists z. E(x,z) & E(z,y)) | E(x,y) | x = y"
  in
  let atom = Parse.formula "dist(x,y) <= 2" in
  let vars = [ "x"; "y" ] in
  Alcotest.(check bool) "unfolding = distance atom" true
    (Nd_eval.Naive.eval_all ctx ~vars unfolded
    = Nd_eval.Naive.eval_all ctx ~vars atom);
  (* and through the full pipeline *)
  let eng = Nd_engine.prepare g atom in
  Alcotest.(check bool) "pipeline agrees" true
    (Nd_engine.to_list eng = Nd_eval.Naive.eval_all ctx ~vars atom)

(* Example 1-B: with a (2,4)-neighborhood cover,
   G ⊨ q(a,b) ⟺ b ∈ X(a) ∧ G[X(a)] ⊨ q(a,b). *)
let test_example_1b () =
  let g = Gen.planar_grid ~seed:2 8 8 in
  let cover = Nd_nowhere.Cover.compute g ~r:2 in
  let ctx = Nd_eval.Naive.ctx g in
  let n = Cgraph.n g in
  for a = 0 to n - 1 do
    let bag_id = cover.Nd_nowhere.Cover.assigned.(a) in
    let bag = cover.Nd_nowhere.Cover.bags.(bag_id) in
    let sub, to_orig = Cgraph.induced g bag in
    let subctx = Nd_eval.Naive.ctx sub in
    for b = 0 to n - 1 do
      let global = Nd_eval.Naive.dist_le ctx a b 2 in
      let local =
        match (Cgraph.local_of_orig to_orig a, Cgraph.local_of_orig to_orig b) with
        | Some la, Some lb -> Nd_eval.Naive.dist_le subctx la lb 2
        | _ -> false
      in
      if global <> local then
        Alcotest.failf "Example 1-B fails at (%d,%d): global %b local %b" a b
          global local
    done
  done

(* Example 2: q(x,y) := dist>2(x,y) ∧ B(y) — enumerate blue nodes far
   from x; and its ternary variant with two far constraints. *)
let test_example_2 () =
  let g = Gen.randomly_color ~seed:3 ~colors:2 (Gen.random_tree ~seed:9 50) in
  let ctx = Nd_eval.Naive.ctx g in
  List.iter
    (fun q ->
      let phi = Parse.formula ~colors:[ ("B", 1) ] q in
      (match Nd_core.Compile.compile phi with
      | Nd_core.Compile.Compiled _ -> ()
      | Nd_core.Compile.Fallback f ->
          Alcotest.failf "Example 2 query %s fell back: %s" q f.reason);
      let eng = Nd_engine.prepare g phi in
      Alcotest.(check bool) (q ^ " matches naive") true
        (Nd_engine.to_list eng
        = Nd_eval.Naive.eval_all ctx ~vars:(Fo.free_vars phi) phi))
    [
      "dist(x,y) > 2 & B(y)";
      "dist(x,z) > 2 & dist(y,z) > 2 & B(z)";
    ]

(* The lexicographic-successor semantics of Theorem 2.3's statement:
   on input ā, return the smallest ā' ≥ ā with ā' ∈ q(G). *)
let test_theorem_23_statement () =
  let g = Gen.randomly_color ~seed:4 ~colors:2 (Gen.cycle 15) in
  let phi = Parse.formula "E(x,y) & C0(y)" in
  let ctx = Nd_eval.Naive.ctx g in
  let sols = Nd_eval.Naive.eval_all ctx ~vars:[ "x"; "y" ] phi in
  let eng = Nd_engine.prepare g phi in
  for a = 0 to 14 do
    for b = 0 to 14 do
      let input = [| a; b |] in
      let expect =
        List.find_opt (fun s -> Nd_util.Tuple.compare s input >= 0) sols
      in
      if Nd_engine.next eng input <> expect then
        Alcotest.failf "Theorem 2.3 statement fails at (%d,%d)" a b
    done
  done

(* Enumeration output is invariant under vertex relabeling (up to the
   relabeling itself): solution COUNTS and set semantics must agree. *)
let test_relabeling_invariance () =
  let n = 40 in
  let g0 = Gen.randomly_color ~seed:5 ~colors:2 (Gen.bounded_degree ~seed:5 n ~max_degree:3) in
  let rng = Random.State.make [| 99 |] in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let colors =
    Array.init (Cgraph.color_count g0) (fun c ->
        let bs = Nd_util.Bitset.create n in
        Array.iter
          (fun v -> Nd_util.Bitset.add bs perm.(v))
          (Cgraph.color_members g0 ~color:c);
        bs)
  in
  let g1 =
    Cgraph.create ~n ~colors
      (Cgraph.fold_edges (fun u v acc -> (perm.(u), perm.(v)) :: acc) g0 [])
  in
  List.iter
    (fun q ->
      let phi = Parse.formula q in
      let c0 = Nd_engine.count_enumerated (Nd_engine.prepare g0 phi) in
      let c1 = Nd_engine.count_enumerated (Nd_engine.prepare g1 phi) in
      Alcotest.(check int) (q ^ " count invariant") c0 c1)
    [ "dist(x,y) <= 2"; "dist(x,y) > 2 & C1(y)"; "exists z. E(x,z) & E(z,y)" ]

let suite =
  [
    Alcotest.test_case "Example 1-A (distance-two query)" `Quick test_example_1a;
    Alcotest.test_case "Example 1-B (cover locality)" `Slow test_example_1b;
    Alcotest.test_case "Example 2 (far blue nodes)" `Quick test_example_2;
    Alcotest.test_case "Theorem 2.3 statement" `Quick test_theorem_23_statement;
    Alcotest.test_case "relabeling invariance" `Quick test_relabeling_invariance;
  ]
