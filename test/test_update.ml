(* The incremental update pipeline: mutation sequences absorbed through
   Nd_engine.update must be indistinguishable — on next/test/seq — from
   a from-scratch prepare on the mutated graph, and from the naive
   evaluator.  Covers cache/frontier invalidation edge cases, the
   stale-rebuild rung, degraded handles, sentences, and the Cgraph
   mutation layer itself. *)

open Nd_graph
open Nd_logic

let naive_solutions g phi =
  Nd_eval.Naive.eval_all (Nd_eval.Naive.ctx g) ~vars:(Fo.free_vars phi) phi

let tuple_list_equal a b =
  List.length a = List.length b && List.for_all2 (fun x y -> x = y) a b

let show_tuples ts =
  String.concat " "
    (List.map
       (fun t ->
         "("
         ^ String.concat "," (List.map string_of_int (Array.to_list t))
         ^ ")")
       ts)

(* random mutation stream over a (possibly mutated) graph *)
let random_mutation rng g =
  let n = Cgraph.n g in
  let v () = Random.State.int rng n in
  let rec edge () =
    let u = v () and w = v () in
    if u = w then edge () else (u, w)
  in
  match Random.State.int rng 4 with
  | 0 ->
      let u, w = edge () in
      Cgraph.Add_edge (u, w)
  | 1 ->
      (* bias removals toward existing edges, keeping some no-op removes *)
      let u = v () in
      let nbrs = Cgraph.neighbors g u in
      if Array.length nbrs > 0 && Random.State.bool rng then
        Cgraph.Remove_edge (u, nbrs.(Random.State.int rng (Array.length nbrs)))
      else
        let u, w = edge () in
        Cgraph.Remove_edge (u, w)
  | 2 ->
      Cgraph.Set_color
        {
          color = Random.State.int rng (max 1 (Cgraph.color_count g));
          vertex = v ();
          present = Random.State.bool rng;
        }
  | _ ->
      let u, w = edge () in
      if Cgraph.has_edge g u w then Cgraph.Remove_edge (u, w)
      else Cgraph.Add_edge (u, w)

(* ---------------------------------------------------------------- *)
(* Cgraph mutation layer *)

let test_apply_is_persistent () =
  let g = Gen.grid 4 4 in
  let g' = Cgraph.apply g (Cgraph.Add_edge (0, 15)) in
  Alcotest.(check bool) "old view lacks the edge" false (Cgraph.has_edge g 0 15);
  Alcotest.(check bool) "new view has the edge" true (Cgraph.has_edge g' 0 15);
  Alcotest.(check int) "old m" (Cgraph.m g) (Cgraph.m g' - 1);
  Alcotest.(check int) "epoch 0" 0 (Cgraph.epoch g);
  Alcotest.(check int) "epoch 1" 1 (Cgraph.epoch g');
  let g'' = Cgraph.apply g' (Cgraph.Remove_edge (0, 15)) in
  Alcotest.(check bool) "removed again" false (Cgraph.has_edge g'' 0 15);
  Alcotest.(check int) "epoch 2" 2 (Cgraph.epoch g'');
  (* ABA: structurally equal to the original, epoch differs *)
  Alcotest.(check bool) "ABA structural equality" true (Cgraph.equal g g'');
  let gi = Cgraph.apply g'' (Cgraph.Add_edge (0, 1)) in
  Alcotest.(check int) "idempotent add still bumps epoch" 3 (Cgraph.epoch gi);
  Alcotest.(check int) "idempotent add keeps m" (Cgraph.m g'') (Cgraph.m gi)

let test_apply_validates () =
  let g = Gen.grid 3 3 in
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Cgraph.apply: self-loop") (fun () ->
      ignore (Cgraph.apply g (Cgraph.Add_edge (2, 2))));
  (match Cgraph.apply g (Cgraph.Add_edge (0, 99)) with
  | _ -> Alcotest.fail "out-of-range accepted"
  | exception Invalid_argument _ -> ());
  match
    Cgraph.apply g (Cgraph.Set_color { color = 0; vertex = 0; present = true })
  with
  | _ -> Alcotest.fail "color out of range accepted"
  | exception Invalid_argument _ -> ()

let test_mutation_strings () =
  let muts =
    [
      Cgraph.Add_edge (3, 4);
      Cgraph.Remove_edge (0, 12);
      Cgraph.Set_color { color = 1; vertex = 7; present = true };
      Cgraph.Set_color { color = 0; vertex = 2; present = false };
    ]
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "roundtrip" true
        (Cgraph.mutation_of_string (Cgraph.mutation_to_string m) = m))
    muts;
  (match Cgraph.mutation_of_string "  add-edge   5  6 " with
  | Cgraph.Add_edge (5, 6) -> ()
  | _ -> Alcotest.fail "whitespace-tolerant parse");
  match Cgraph.mutation_of_string "frobnicate 1 2" with
  | _ -> Alcotest.fail "garbage accepted"
  | exception Invalid_argument _ -> ()

(* ---------------------------------------------------------------- *)
(* Zoo-wide differential fuzz *)

let fuzz_specs =
  [
    ("grid 6x6", fun () -> Gen.randomly_color ~seed:11 ~colors:2 (Gen.planar_grid ~seed:4 6 6));
    ("random tree", fun () -> Gen.randomly_color ~seed:5 ~colors:2 (Gen.random_tree ~seed:9 40));
    ("bounded degree", fun () -> Gen.randomly_color ~seed:3 ~colors:2 (Gen.bounded_degree ~seed:7 40 ~max_degree:3));
    ("caterpillar", fun () -> Gen.randomly_color ~seed:2 ~colors:2 (Gen.caterpillar ~seed:1 30));
  ]

let fuzz_queries =
  [ "dist(x,y) <= 2"; "E(x,y) & C0(y)"; "dist(x,y) > 2 & C1(y)"; "C0(x)" ]

let check_engine_matches ~ctxt eng g phi =
  let got = Nd_engine.to_list eng in
  let fresh = Nd_engine.to_list (Nd_engine.prepare g phi) in
  if not (tuple_list_equal got fresh) then
    Alcotest.failf "%s: update-maintained ≠ fresh prepare\n  upd:   %s\n  fresh: %s"
      ctxt (show_tuples got) (show_tuples fresh);
  let naive = naive_solutions g phi in
  if not (tuple_list_equal got naive) then
    Alcotest.failf "%s: update-maintained ≠ naive" ctxt

let test_fuzz_differential () =
  List.iter
    (fun (sname, mk) ->
      List.iter
        (fun qs ->
          let phi = Parse.formula qs in
          let rng = Random.State.make [| Hashtbl.hash (sname, qs); 77 |] in
          let g = ref (mk ()) in
          let eng = Nd_engine.prepare !g phi in
          (* warm the cache partially so invalidation has work to do *)
          ignore (Nd_engine.to_list ~limit:9 eng);
          for step = 1 to 6 do
            let mut = random_mutation rng !g in
            Nd_engine.update eng mut;
            g := Cgraph.apply !g mut;
            Alcotest.(check int)
              (Printf.sprintf "%s/%s epoch at step %d" sname qs step)
              step (Nd_engine.epoch eng);
            check_engine_matches
              ~ctxt:(Printf.sprintf "%s / %s / step %d (%s)" sname qs step
                       (Cgraph.mutation_to_string mut))
              eng !g phi;
            (* random next/test probes straddling the frontier *)
            let k = Nd_engine.arity eng in
            let n = Cgraph.n !g in
            let fresh = Nd_engine.prepare !g phi in
            for _ = 1 to 5 do
              let a = Array.init k (fun _ -> Random.State.int rng n) in
              let e1 = Nd_engine.next eng a and e2 = Nd_engine.next fresh a in
              if e1 <> e2 then
                Alcotest.failf "%s/%s: next %s diverges" sname qs
                  (Nd_util.Tuple.to_string a);
              if Nd_engine.test eng a <> Nd_engine.test fresh a then
                Alcotest.failf "%s/%s: test %s diverges" sname qs
                  (Nd_util.Tuple.to_string a)
            done
          done)
        fuzz_queries)
    fuzz_specs

(* cache fully complete, then mutate: the frontier boundary edge case *)
let test_complete_cache_invalidation () =
  let g0 = Gen.randomly_color ~seed:11 ~colors:2 (Gen.planar_grid ~seed:4 5 5) in
  let phi = Parse.formula "E(x,y) & C0(y)" in
  let eng = Nd_engine.prepare g0 phi in
  ignore (Nd_engine.to_list eng);
  (* cache now complete *)
  Alcotest.(check bool) "cache complete" true (Nd_engine.cache_complete eng);
  let mut = Cgraph.Add_edge (0, 24) in
  Nd_engine.update eng mut;
  let g1 = Cgraph.apply g0 mut in
  Alcotest.(check bool) "no longer complete" false (Nd_engine.cache_complete eng);
  check_engine_matches ~ctxt:"complete-cache mutate" eng g1 phi;
  (* enumerate again: cache re-completes over the mutated graph *)
  ignore (Nd_engine.to_list eng);
  Alcotest.(check bool) "re-completed" true (Nd_engine.cache_complete eng);
  check_engine_matches ~ctxt:"re-completed" eng g1 phi

(* a mutation at high vertex ids: cached low-region keys must survive *)
let test_partial_invalidation_keeps_clean_prefix () =
  let g0 = Gen.randomly_color ~seed:11 ~colors:2 (Gen.planar_grid ~seed:4 6 6) in
  let phi = Parse.formula "E(x,y) & C0(y)" in
  let eng = Nd_engine.prepare g0 phi in
  ignore (Nd_engine.to_list eng);
  let size_before = Nd_engine.cache_size eng in
  let n = Cgraph.n g0 in
  let mut = Cgraph.Add_edge (n - 1, n - 7) in
  Nd_engine.update eng mut;
  let g1 = Cgraph.apply g0 mut in
  let size_after = Nd_engine.cache_size eng in
  Alcotest.(check bool)
    (Printf.sprintf "clean-prefix keys survive (%d -> %d)" size_before
       size_after)
    true
    (size_after > 0 && size_after <= size_before);
  check_engine_matches ~ctxt:"partial invalidation" eng g1 phi

let test_stale_rebuild_threshold () =
  let g0 = Gen.randomly_color ~seed:11 ~colors:2 (Gen.planar_grid ~seed:4 5 5) in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare g0 phi in
  (* threshold 0: any mutation trips the stale-rebuild rung *)
  let mut = Cgraph.Add_edge (0, 24) in
  Nd_engine.update ~stale_threshold:0.0 eng mut;
  let g1 = Cgraph.apply g0 mut in
  (match Nd_engine.degradation eng with
  | `Stale_rebuild reason ->
      Alcotest.(check bool) "reason mentions threshold" true
        (String.length reason > 0)
  | `None | `Fallback _ -> Alcotest.fail "expected `Stale_rebuild");
  Alcotest.(check bool) "stale rebuild is not degraded" false
    (Nd_engine.degraded eng);
  Alcotest.(check bool) "still compiled" true (Nd_engine.compiled eng);
  check_engine_matches ~ctxt:"stale rebuild" eng g1 phi

let test_degraded_handle_update () =
  let g0 = Gen.randomly_color ~seed:17 ~colors:2 (Gen.bounded_degree ~seed:17 40 ~max_degree:3) in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let b = Nd_util.Budget.create ~max_ops:1 () in
  let eng = Nd_engine.prepare ~budget:b g0 phi in
  Alcotest.(check bool) "degraded" true (Nd_engine.degraded eng);
  let mut = Cgraph.Remove_edge (0, (Cgraph.neighbors g0 0).(0)) in
  Nd_engine.update eng mut;
  let g1 = Cgraph.apply g0 mut in
  Alcotest.(check bool) "still degraded" true (Nd_engine.degraded eng);
  let got = Nd_engine.to_list eng in
  Alcotest.(check bool) "degraded update ≡ naive" true
    (tuple_list_equal got (naive_solutions g1 phi))

let test_sentence_update () =
  let g0 = Gen.randomly_color ~seed:11 ~colors:2 (Gen.path 8) in
  let phi = Parse.formula "exists x. exists y. E(x,y) & C0(x) & C0(y)" in
  let eng = Nd_engine.prepare g0 phi in
  let before = Nd_engine.holds eng in
  (* flip every C0 off: the sentence must become false *)
  let g = ref g0 in
  for v = 0 to Cgraph.n g0 - 1 do
    let mut = Cgraph.Set_color { color = 0; vertex = v; present = false } in
    Nd_engine.update eng mut;
    g := Cgraph.apply !g mut
  done;
  Alcotest.(check bool) "was satisfiable or not, consistently" before
    (Nd_engine.holds (Nd_engine.prepare g0 phi));
  Alcotest.(check bool) "sentence now false" false (Nd_engine.holds eng)

let test_update_validates () =
  let g = Gen.grid 3 3 in
  let eng = Nd_engine.prepare g (Parse.formula "E(x,y)") in
  (match Nd_engine.update eng (Cgraph.Add_edge (0, 0)) with
  | () -> Alcotest.fail "self-loop accepted"
  | exception Nd_error.User_error _ -> ());
  (match Nd_engine.update eng (Cgraph.Add_edge (0, 99)) with
  | () -> Alcotest.fail "out-of-range accepted"
  | exception Nd_error.User_error _ -> ());
  match
    Nd_engine.update eng
      (Cgraph.Set_color { color = 5; vertex = 0; present = true })
  with
  | () -> Alcotest.fail "bad color accepted"
  | exception Nd_error.User_error _ -> ()

let test_update_batch_journal () =
  let g0 = Gen.randomly_color ~seed:11 ~colors:2 (Gen.planar_grid ~seed:4 5 5) in
  let phi = Parse.formula "E(x,y) & C0(y)" in
  let eng = Nd_engine.prepare g0 phi in
  let journal =
    [
      Cgraph.Add_edge (0, 24);
      Cgraph.Set_color { color = 0; vertex = 3; present = true };
      Cgraph.Remove_edge (0, 24);
      Cgraph.Add_edge (2, 17);
    ]
  in
  Nd_engine.update_batch eng journal;
  let g1 = List.fold_left Cgraph.apply g0 journal in
  Alcotest.(check int) "epoch counts the journal" (List.length journal)
    (Nd_engine.epoch eng);
  check_engine_matches ~ctxt:"batch journal" eng g1 phi

let suite =
  [
    Alcotest.test_case "apply is persistent + epoch" `Quick test_apply_is_persistent;
    Alcotest.test_case "apply validates input" `Quick test_apply_validates;
    Alcotest.test_case "mutation wire syntax roundtrip" `Quick test_mutation_strings;
    Alcotest.test_case "zoo fuzz: update ≡ fresh prepare ≡ naive" `Slow test_fuzz_differential;
    Alcotest.test_case "complete cache invalidation" `Quick test_complete_cache_invalidation;
    Alcotest.test_case "partial invalidation keeps clean prefix" `Quick test_partial_invalidation_keeps_clean_prefix;
    Alcotest.test_case "stale-rebuild threshold rung" `Quick test_stale_rebuild_threshold;
    Alcotest.test_case "degraded handle absorbs updates" `Quick test_degraded_handle_update;
    Alcotest.test_case "sentence handle re-checks" `Quick test_sentence_update;
    Alcotest.test_case "update validates mutations" `Quick test_update_validates;
    Alcotest.test_case "batch journal replay" `Quick test_update_batch_journal;
  ]
