let () =
  Alcotest.run "nowhere-enum"
    [
      ("util", Test_util.suite);
      ("store (Theorem 3.1)", Test_store.suite);
      ("flat store vs boxed oracle", Test_flat.suite);
      ("graph", Test_graph.suite);
      ("logic", Test_logic.suite);
      ("eval + Lemma 2.2", Test_eval.suite);
      ("nowhere-dense toolbox", Test_nowhere.suite);
      ("distance index (Prop 4.2)", Test_dist_index.suite);
      ("removal lemma (Lemma 5.5)", Test_removal.suite);
      ("skip pointers (Lemma 5.8)", Test_skip.suite);
      ("compiler (Theorem 5.4 surrogate)", Test_compile.suite);
      ("enumeration (Thm 2.3, Cor 2.4/2.5)", Test_enum.suite);
      ("integration", Test_pipeline.suite);
      ("random query fuzzing", Test_random_queries.suite);
      ("paper examples", Test_paper_examples.suite);
      ("counting (GS companion result)", Test_count.suite);
      ("engine facade", Test_engine.suite);
      ("incremental updates", Test_update.suite);
      ("metrics + cost model", Test_metrics.suite);
      ("domain pool", Test_pool.suite);
      ("parallel prepare (DESIGN S14)", Test_parallel.suite);
      ("graph spec parsing", Test_gen_spec.suite);
      ("budget", Test_budget.suite);
      ("chaos", Test_chaos.suite);
      ("snapshot persistence", Test_snapshot.suite);
      ("serve loop", Test_server.suite);
      ("chaos proxy (socket faults)", Test_chaos_net.suite);
      ("supervisor (crash recovery)", Test_supervisor.suite);
      ("cluster (DESIGN S16)", Test_cluster.suite);
      ("span tracing", Test_trace.suite);
      ("prometheus exposition", Test_prometheus.suite);
      ("delay profile", Test_profile.suite);
      ("fleet observability (DESIGN S17)", Test_obs.suite);
    ]
