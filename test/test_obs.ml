(* Fleet observability (DESIGN S17): the trace= request attribute and
   its propagation, the cross-process trace merge, aggregated
   Prometheus, and the crash flight recorder.  Cross-process linking is
   exercised over synthesized shards (forking here is illegal — other
   suites have already spawned domains); the genuine 3-process run
   lives in CI's fleet-observability job. *)

open Nd_graph
module Server = Nd_server
module Router = Nd_cluster.Router
module Ownership = Nd_cluster.Ownership
module Ctx = Nd_obs.Ctx
module Merge = Nd_obs.Merge
module Prom = Nd_obs.Prom
module Lhist = Nd_obs.Lhist
module Flight = Nd_obs.Flight

let graph () = Gen.randomly_color ~seed:5 ~colors:3 (Gen.grid 5 5)
let query = "dist(x,y) <= 2"

let make ?config () =
  let g = graph () in
  let phi = Nd_logic.Parse.formula query in
  let eng = Nd_engine.prepare g phi in
  (Server.create ?config eng, eng)

let terminator reply =
  match List.rev reply with
  | last :: _ -> last
  | [] -> Alcotest.fail "empty reply"

let check_ok what reply = Alcotest.(check string) what "ok" (terminator reply)

let with_tracing f =
  Nd_trace.enable ();
  Nd_trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Nd_trace.disable ();
      Nd_trace.clear ())
    f

let tmp_file name =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nd_obs_%s_%d" name (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  path

(* ---------------- trace-context attribute ---------------- *)

let ctx_gen =
  let open QCheck.Gen in
  let id_char =
    oneof
      [
        char_range 'a' 'z'; char_range 'A' 'Z'; char_range '0' '9';
        oneofl [ '.'; '_'; '-' ];
      ]
  in
  let id = map (fun l -> String.concat "" (List.map (String.make 1) l))
      (list_size (int_range 1 24) id_char)
  in
  map2 (fun trace_id span -> { Ctx.trace_id; span }) id (int_bound 1_000_000)

let prop_ctx_roundtrip =
  QCheck.Test.make ~name:"ctx encode/parse round-trip" ~count:200
    (QCheck.make ctx_gen) (fun c ->
      (match Ctx.parse (Ctx.encode c) with
      | Ok c' when c' = c -> ()
      | Ok c' ->
          QCheck.Test.fail_reportf "parse(encode %s:%d) = %s:%d"
            c.Ctx.trace_id c.Ctx.span c'.Ctx.trace_id c'.Ctx.span
      | Error m -> QCheck.Test.fail_reportf "parse(encode) failed: %s" m);
      (* stamping a request line and splitting it back is lossless *)
      let base = "enumerate 64" in
      match Ctx.split_line (Ctx.stamp base c) with
      | b, Some (Ok c') -> b = base && c' = c
      | _, _ -> false)

let test_ctx_parse_rejections () =
  let reject tok reason_frag =
    match Ctx.parse tok with
    | Ok _ -> Alcotest.failf "%S parsed" tok
    | Error m ->
        if
          not
            (String.length m >= String.length reason_frag
            && String.lowercase_ascii m |> fun lm ->
               let f = String.lowercase_ascii reason_frag in
               let rec go i =
                 i + String.length f <= String.length lm
                 && (String.sub lm i (String.length f) = f || go (i + 1))
               in
               go 0)
        then Alcotest.failf "%S: reason %S lacks %S" tok m reason_frag
  in
  reject "ctx=a:1" "trace=";
  reject "trace=a1" "want trace=";
  reject "trace=:1" "non-empty";
  reject "trace=a b:1" "non-empty";
  reject "trace=a:" "non-negative";
  reject "trace=a:-3" "non-negative";
  reject "trace=a:x" "non-negative";
  (* no attribute at all: split reports None, the line is untouched *)
  (match Ctx.split_line "enumerate 64" with
  | "enumerate 64", None -> ()
  | _ -> Alcotest.fail "plain line was split");
  (* only the LAST token is an attribute position *)
  match Ctx.split_line "trace=a:1 enumerate" with
  | "trace=a:1 enumerate", None -> ()
  | _ -> Alcotest.fail "non-final trace= token treated as attribute"

let test_server_ctx_strip_and_malformed () =
  let srv, _ = make () in
  (* a valid attribute is stripped before dispatch *)
  Alcotest.(check (list string))
    "stamped test" [ "true"; "ok" ]
    (Server.handle srv "test 0,1 trace=cli:7");
  check_ok "stamped enumerate" (Server.handle srv "enumerate 3 trace=cli:9");
  (* malformed: a structured user error naming the attribute... *)
  (match Server.handle srv "next 0,0 trace=:" with
  | [ only ] ->
      Alcotest.(check bool) "err user" true
        (String.starts_with ~prefix:"err user " only);
      let has frag =
        let fl = String.length frag and l = String.length only in
        let rec go i =
          i + fl <= l && (String.sub only i fl = frag || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "names the attribute" true
        (has "bad trace= attribute")
  | r -> Alcotest.failf "malformed trace reply: %s" (String.concat "|" r));
  (* ...and never a desync: the next request answers normally *)
  Alcotest.(check (list string))
    "protocol still in sync" [ "sol 0,0"; "ok" ]
    (Server.handle srv "next 0,0")

let test_server_span_carries_ctx_attrs () =
  with_tracing @@ fun () ->
  let srv, _ = make () in
  check_ok "traced request" (Server.handle srv "test 0,1 trace=upstream-7:42");
  let doc = Nd_trace.export_chrome () in
  let has frag =
    let fl = String.length frag and l = String.length doc in
    let rec go i = i + fl <= l && (String.sub doc i fl = frag || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "ctx.trace attr recorded" true
    (has "\"ctx.trace\":\"upstream-7\"");
  Alcotest.(check bool) "ctx.span attr recorded" true (has "\"ctx.span\":\"42\"");
  Alcotest.(check bool) "process identity exported" true
    (has "\"process\":{\"trace_id\":\"")

(* ---------------- event-log timestamps (the ts bugfix) ------------- *)

let test_event_rows_use_ts_us () =
  let rows = ref [] and flight = ref [] in
  let config =
    {
      Server.default_config with
      Server.event_log = Some (fun l -> rows := l :: !rows);
      flight = Some (fun l -> flight := l :: !flight);
    }
  in
  let srv, _ = make ~config () in
  let before = Nd_obs.now_us () in
  check_ok "one request" (Server.handle srv "test 0,1");
  ignore (Server.handle srv "frobnicate");
  let after = Nd_obs.now_us () in
  let check_row l =
    match Nd_trace.Json.parse l with
    | Error e -> Alcotest.failf "row not JSON (%s): %s" e l
    | Ok j -> (
        (match Nd_trace.Json.member "ts" j with
        | None -> ()
        | Some _ -> Alcotest.failf "row still carries legacy ts: %s" l);
        match Nd_trace.Json.member "ts_us" j with
        | Some (Nd_trace.Json.Num v) ->
            Alcotest.(check bool) "ts_us is an integer microsecond count" true
              (Float.is_integer v
              && v >= float_of_int before -. 1.
              && v <= float_of_int after +. 1.)
        | _ -> Alcotest.failf "row lacks ts_us: %s" l)
  in
  Alcotest.(check int) "two event rows" 2 (List.length !rows);
  List.iter check_row !rows;
  (* the flight mirror gets the same rows, epoch-stamped *)
  Alcotest.(check int) "two flight rows" 2 (List.length !flight);
  List.iter
    (fun l ->
      check_row l;
      match Nd_trace.Json.(parse l) with
      | Ok j -> (
          match Nd_trace.Json.member "epoch" j with
          | Some (Nd_trace.Json.Num _) -> ()
          | _ -> Alcotest.failf "flight row lacks epoch: %s" l)
      | Error _ -> ())
    !flight

(* ---------------- cross-process merge ---------------- *)

(* Hand-built Chrome shards with correctly interleaved wall-clock
   timestamps: a router process whose router.call spans parent two
   worker-side server.request spans via propagated contexts. *)
let router_shard =
  {|{"process":{"trace_id":"router","pid":100},"traceEvents":[
     {"name":"router.request","cat":"fodb","ph":"X","pid":100,"tid":1,
      "ts":1000,"dur":900,"args":{"sid":1,"parent":0,"ops":0,"rid":"1","cmd":"enumerate"}},
     {"name":"router.call","cat":"fodb","ph":"X","pid":100,"tid":1,
      "ts":1100,"dur":300,"args":{"sid":2,"parent":1,"ops":0,"shard":"0"}},
     {"name":"router.call","cat":"fodb","ph":"X","pid":100,"tid":1,
      "ts":1500,"dur":300,"args":{"sid":3,"parent":1,"ops":0,"shard":"1"}}]}|}

let worker_shard ~trace_id ~parent_span ~ts =
  Printf.sprintf
    {|{"process":{"trace_id":"%s","pid":200},"traceEvents":[
       {"name":"server.request","cat":"fodb","ph":"X","pid":200,"tid":1,
        "ts":%d,"dur":100,"args":{"sid":1,"parent":0,"ops":0,
        "ctx.trace":"router","ctx.span":"%d"}}]}|}
    trace_id ts parent_span

let test_merge_links_across_processes () =
  let docs =
    [
      router_shard;
      worker_shard ~trace_id:"w0" ~parent_span:2 ~ts:1150;
      worker_shard ~trace_id:"w1" ~parent_span:3 ~ts:1550;
    ]
  in
  match Merge.merge docs with
  | Error e -> Alcotest.failf "merge failed: %s" e
  | Ok (doc, rep) ->
      Alcotest.(check int) "processes" 3 rep.Merge.r_processes;
      Alcotest.(check int) "events" 5 rep.Merge.r_events;
      Alcotest.(check int) "cross-process links" 2 rep.Merge.r_linked;
      Alcotest.(check int) "orphans" 0 rep.Merge.r_orphans;
      (match Merge.validate doc with
      | Error e -> Alcotest.failf "merged doc invalid: %s" e
      | Ok v ->
          Alcotest.(check int) "propagated server.requests" 2
            v.Merge.v_server_requests;
          Alcotest.(check int) "all router-contained" 2 v.Merge.v_contained;
          Alcotest.(check int) "no orphans" 0 v.Merge.v_orphans);
      (* duplicate trace ids must be rejected, not silently fused *)
      match Merge.merge [ router_shard; router_shard ] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "duplicate trace ids merged"

let test_merge_flags_orphans () =
  (* worker references span 99, which no shard recorded (evicted) *)
  let docs =
    [ router_shard; worker_shard ~trace_id:"w0" ~parent_span:99 ~ts:1150 ]
  in
  match Merge.merge docs with
  | Error e -> Alcotest.failf "merge failed: %s" e
  | Ok (doc, rep) ->
      Alcotest.(check int) "orphans flagged" 1 rep.Merge.r_orphans;
      Alcotest.(check int) "nothing linked" 0 rep.Merge.r_linked;
      Alcotest.(check int) "nothing dropped" 4 rep.Merge.r_events;
      let has frag =
        let fl = String.length frag and l = String.length doc in
        let rec go i =
          i + fl <= l && (String.sub doc i fl = frag || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "orphan marker in doc" true
        (has "\"ctx.orphan\":\"unresolved\"");
      (* an orphan cannot witness containment either way: it is
         tolerated, counted, and excluded from the resolved tally *)
      (match Merge.validate doc with
      | Error e -> Alcotest.failf "orphan broke validation: %s" e
      | Ok v ->
          Alcotest.(check int) "orphan counted" 1 v.Merge.v_orphans;
          Alcotest.(check int) "not in the resolved tally" 0
            v.Merge.v_server_requests);
      (* a RESOLVED server.request that climbs to a non-router root is
         structurally broken propagation — that one fails loudly *)
      let rogue_router =
        {|{"process":{"trace_id":"router","pid":100},"traceEvents":[
           {"name":"bg.tick","cat":"fodb","ph":"X","pid":100,"tid":1,
            "ts":1000,"dur":900,"args":{"sid":7,"parent":0,"ops":0}}]}|}
      in
      let docs =
        [ rogue_router; worker_shard ~trace_id:"w0" ~parent_span:7 ~ts:1150 ]
      in
      match Merge.merge docs with
      | Error e -> Alcotest.failf "rogue merge failed: %s" e
      | Ok (doc, _) -> (
          match Merge.validate doc with
          | Error _ -> ()
          | Ok _ ->
              Alcotest.fail
                "server.request rooted outside the router passed validation")

let test_router_trace_in_process () =
  with_tracing @@ fun () ->
  let own = Ownership.compute (graph ()) ~shards:2 in
  let shard_server shard =
    let eng = Nd_engine.prepare (graph ()) (Nd_logic.Parse.formula query) in
    let config =
      {
        Server.default_config with
        Server.owner = Some (Ownership.owner own ~shard);
      }
    in
    Server.create ~config eng
  in
  let eps =
    List.init 2 (fun s ->
        Router.local_endpoint ~shard:s
          ~label:(Printf.sprintf "s%d" s)
          (shard_server s))
  in
  let rt = Router.create ~ownership:own ~arity:2 eps in
  check_ok "traced enumerate" (Router.handle rt "enumerate 5 trace=cli:3");
  (* malformed at the router: structured user error, protocol intact *)
  (match Router.handle rt "next 0,0 trace=nope" with
  | [ only ] ->
      Alcotest.(check bool) "router err user" true
        (String.starts_with ~prefix:"err user " only)
  | r -> Alcotest.failf "router malformed reply: %s" (String.concat "|" r));
  check_ok "router still in sync" (Router.handle rt "next 0,0");
  let doc = Nd_trace.export_chrome () in
  (match Nd_trace.validate_chrome doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "router trace invalid: %s" e);
  (* in-process fan-out nests naturally; the merged-single-shard view
     must already satisfy the acceptance rule *)
  match Merge.merge [ doc ] with
  | Error e -> Alcotest.failf "single-shard merge failed: %s" e
  | Ok (merged, _) -> (
      match Merge.validate merged with
      | Error e -> Alcotest.failf "in-process containment failed: %s" e
      | Ok v ->
          Alcotest.(check bool) "saw traced server.request spans" true
            (v.Merge.v_server_requests >= 1);
          Alcotest.(check int) "all contained" v.Merge.v_server_requests
            v.Merge.v_contained)

(* ---------------- aggregated Prometheus ---------------- *)

let test_prom_relabel_merge_validate () =
  let worker =
    "# HELP nd_ops_total Cost-model operations.\n\
     # TYPE nd_ops_total counter\n\
     nd_ops_total 41\n\
     # HELP nd_latency_us Request latency.\n\
     # TYPE nd_latency_us histogram\n\
     nd_latency_us_bucket{le=\"1\"} 2\n\
     nd_latency_us_bucket{le=\"+Inf\"} 3\n\
     nd_latency_us_sum 7\n\
     nd_latency_us_count 3\n"
  in
  let r0 = Prom.relabel ~labels:[ ("shard", "0"); ("replica", "0") ] worker in
  let r1 = Prom.relabel ~labels:[ ("shard", "1"); ("replica", "0") ] worker in
  let hist = Lhist.create ~name:"nd_router_pull_us" ~help:"pull" ~label:"shard" () in
  Lhist.observe hist ~label:"0" 3;
  Lhist.observe hist ~label:"0" 70_000_000;
  Lhist.observe hist ~label:"1" 9;
  let merged =
    Prom.merge
      [
        Prom.gauge ~name:"nd_fleet_epoch" ~help:"Fleet epoch." 4;
        r0; r1; Lhist.render hist;
      ]
  in
  (match Nd_trace.Prometheus.validate merged with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "aggregate invalid: %s" e);
  let count frag =
    let fl = String.length frag and l = String.length merged in
    let rec go acc i =
      if i + fl > l then acc
      else go (if String.sub merged i fl = frag then acc + 1 else acc) (i + 1)
    in
    go 0 0
  in
  Alcotest.(check int) "one TYPE line per family after merge" 1
    (count "# TYPE nd_ops_total ");
  Alcotest.(check int) "both shards sampled" 1
    (count "nd_ops_total{shard=\"0\",replica=\"0\"} 41");
  Alcotest.(check bool) "relabel reaches labelled samples" true
    (count "nd_latency_us_bucket{shard=\"1\",replica=\"0\",le=\"1\"} 2" = 1);
  Alcotest.(check bool) "pull histogram present per shard" true
    (count "nd_router_pull_us_count{shard=\"0\"} 2" = 1
    && count "nd_router_pull_us_count{shard=\"1\"} 1" = 1);
  Alcotest.(check int) "fleet gauge present" 1 (count "nd_fleet_epoch 4")

let test_router_scrape_aggregates_fleet () =
  let own = Ownership.compute (graph ()) ~shards:2 in
  let shard_server shard =
    let eng = Nd_engine.prepare (graph ()) (Nd_logic.Parse.formula query) in
    let config =
      {
        Server.default_config with
        Server.owner = Some (Ownership.owner own ~shard);
      }
    in
    Server.create ~config eng
  in
  let eps =
    List.concat_map
      (fun s ->
        List.init 2 (fun r ->
            Router.local_endpoint ~shard:s
              ~label:(Printf.sprintf "s%d/r%d" s r)
              (shard_server s)))
      [ 0; 1 ]
  in
  let rt = Router.create ~ownership:own ~arity:2 eps in
  check_ok "page" (Router.handle rt "enumerate 8");
  let doc = Router.scrape_metrics rt in
  (match Nd_trace.Prometheus.validate doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fleet scrape invalid: %s" e);
  let has frag =
    let fl = String.length frag and l = String.length doc in
    let rec go i = i + fl <= l && (String.sub doc i fl = frag || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "fleet epoch gauge" true (has "nd_fleet_epoch ");
  Alcotest.(check bool) "live replica gauge" true
    (has "nd_fleet_live_replicas 4");
  Alcotest.(check bool) "per-shard relabelling" true
    (has "{shard=\"0\",replica=\"0\"" && has "{shard=\"1\",replica=\"1\"");
  Alcotest.(check bool) "pull latency histogram" true
    (has "nd_router_pull_us_bucket{shard=\"0\"" );
  (* the protocol verb serves the same aggregate *)
  match Router.handle rt "metrics" with
  | lines ->
      Alcotest.(check string) "metrics verb ok" "ok" (terminator lines);
      Alcotest.(check bool) "verb carries fleet gauges" true
        (List.exists (String.starts_with ~prefix:"nd_fleet_epoch ") lines)

(* ---------------- crash flight recorder ---------------- *)

let test_flight_ring_evicts_oldest () =
  let fl = Flight.create ~capacity:4 () in
  for i = 1 to 10 do
    Flight.record fl (Printf.sprintf "{\"rid\":%d}" i)
  done;
  Alcotest.(check (list string))
    "last 4, oldest first"
    [ "{\"rid\":7}"; "{\"rid\":8}"; "{\"rid\":9}"; "{\"rid\":10}" ]
    (Flight.events fl);
  Flight.close fl

let test_flight_file_postmortem_cycle () =
  let path = tmp_file "flight" in
  let pm = tmp_file "postmortem" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; pm ])
  @@ fun () ->
  let fl = Flight.create ~capacity:4 ~path () in
  Flight.record fl
    "{\"ts_us\":1,\"rid\":0,\"cmd\":\"(boot)\",\"status\":\"ok\",\"epoch\":2}";
  for i = 1 to 6 do
    Flight.record fl
      (Printf.sprintf "{\"ts_us\":%d,\"rid\":%d,\"epoch\":%d}" (i + 1) i (2 + i))
  done;
  Flight.close fl;
  (* kill -9 semantics: only the file survives; harvest its tail *)
  let events = Flight.harvest ~src:path ~capacity:4 in
  Alcotest.(check int) "harvest keeps the last capacity rows" 4
    (List.length events);
  Alcotest.(check (option int)) "last epoch is the newest" (Some 8)
    (Flight.last_epoch events);
  Flight.write_postmortem ~path:pm ~cause:"signaled 9 (SIGKILL)"
    ~decision:"restart in 100ms" ~last_epoch:(Flight.last_epoch events) ~events;
  (match Flight.harvest ~src:pm ~capacity:100 with
  | header :: rows ->
      Alcotest.(check int) "post-mortem carries the harvest" 4
        (List.length rows);
      (match Nd_trace.Json.parse header with
      | Error e -> Alcotest.failf "header not JSON: %s" e
      | Ok j ->
          let str k =
            match Nd_trace.Json.member k j with
            | Some (Nd_trace.Json.Str s) -> s
            | _ -> Alcotest.failf "header lacks %s" k
          in
          Alcotest.(check string) "kind" "postmortem" (str "kind");
          Alcotest.(check string) "cause" "signaled 9 (SIGKILL)" (str "cause");
          (match Nd_trace.Json.member "last_epoch" j with
          | Some (Nd_trace.Json.Num e) ->
              Alcotest.(check int) "last_epoch" 8 (int_of_float e)
          | _ -> Alcotest.fail "header lacks numeric last_epoch"))
  | [] -> Alcotest.fail "empty post-mortem");
  (* the supervisor then truncates: the next incarnation starts fresh *)
  Flight.truncate path;
  Alcotest.(check (list string)) "flight file emptied" []
    (Flight.harvest ~src:path ~capacity:100);
  Alcotest.(check (list string)) "missing file harvests empty" []
    (Flight.harvest ~src:(path ^ ".nope") ~capacity:4)

let test_flight_file_stays_bounded () =
  let path = tmp_file "flightcap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let fl = Flight.create ~capacity:4 ~path () in
  for i = 1 to 200 do
    Flight.record fl (Printf.sprintf "{\"rid\":%d}" i)
  done;
  Flight.close fl;
  let lines = Flight.harvest ~src:path ~capacity:10_000 in
  Alcotest.(check bool)
    (Printf.sprintf "mirror compacted (%d lines <= 8x capacity)"
       (List.length lines))
    true
    (List.length lines <= 32);
  (* the tail survives compaction verbatim *)
  match List.rev lines with
  | newest :: _ -> Alcotest.(check string) "newest row intact" "{\"rid\":200}" newest
  | [] -> Alcotest.fail "mirror empty"

(* ---------------- supervisor harvest hook ---------------- *)

let test_supervisor_on_crash_hook () =
  let module Sup = Server.Supervisor in
  let clock = ref 0 in
  let spawns = ref 0 in
  let crashes = ref [] in
  let spawn () =
    incr spawns;
    !spawns
  in
  let wait n = if n <= 2 then Sup.Signaled 9 else Sup.Exited 0 in
  let r =
    Sup.run
      ~policy:
        {
          Sup.backoff = Nd_util.Backoff.schedule ~max_ms:100 10;
          max_crashes = 5;
          window_ms = 10_000;
        }
      ~jitter:Nd_util.Backoff.none
      ~sleep_ms:(fun ms -> clock := !clock + ms)
      ~now_ms:(fun () -> !clock)
      ~on_crash:(fun outcome d -> crashes := (outcome, d) :: !crashes)
      ~spawn ~wait ()
  in
  Alcotest.(check bool) "recovered" true (r = Ok ());
  Alcotest.(check int) "three lifetimes" 3 !spawns;
  (match List.rev !crashes with
  | [ (Sup.Signaled 9, Sup.Restart_after_ms _); (Sup.Signaled 9, Sup.Restart_after_ms _) ]
    ->
      ()
  | l -> Alcotest.failf "unexpected crash hook sequence (%d entries)" (List.length l));
  (* a clean exit must not fire the hook *)
  crashes := [];
  let r2 = Sup.run ~spawn:(fun () -> ()) ~wait:(fun () -> Sup.Exited 0)
      ~on_crash:(fun o d -> crashes := (o, d) :: !crashes) ()
  in
  Alcotest.(check bool) "clean run ok" true (r2 = Ok ());
  Alcotest.(check int) "hook silent on clean exit" 0 (List.length !crashes)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ctx_roundtrip;
    Alcotest.test_case "ctx parse rejections" `Quick test_ctx_parse_rejections;
    Alcotest.test_case "server strips ctx, errs on malformed" `Quick
      test_server_ctx_strip_and_malformed;
    Alcotest.test_case "server.request span carries ctx attrs" `Quick
      test_server_span_carries_ctx_attrs;
    Alcotest.test_case "event rows use integer ts_us" `Quick
      test_event_rows_use_ts_us;
    Alcotest.test_case "merge links across processes" `Quick
      test_merge_links_across_processes;
    Alcotest.test_case "merge flags orphans, never drops" `Quick
      test_merge_flags_orphans;
    Alcotest.test_case "router trace propagation (in-process)" `Quick
      test_router_trace_in_process;
    Alcotest.test_case "prom relabel + merge validate" `Quick
      test_prom_relabel_merge_validate;
    Alcotest.test_case "router scrape aggregates the fleet" `Quick
      test_router_scrape_aggregates_fleet;
    Alcotest.test_case "flight ring evicts oldest" `Quick
      test_flight_ring_evicts_oldest;
    Alcotest.test_case "flight file post-mortem cycle" `Quick
      test_flight_file_postmortem_cycle;
    Alcotest.test_case "flight mirror stays bounded" `Quick
      test_flight_file_stays_bounded;
    Alcotest.test_case "supervisor on_crash hook" `Quick
      test_supervisor_on_crash_hook;
  ]
