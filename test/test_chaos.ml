(* The fault-injection harness (Nd_ram.Chaos) against the invariant
   walker (Store.validate): structural corruption must be *detected*,
   never silently absorbed, and dropped updates must be visible
   differentially against the Ref_store oracle. *)

module S = Nd_ram.Store
module C = Nd_ram.Chaos
module R = Nd_ram.Ref_store

let n = 64
let k = 2

let random_key st = [| Random.State.int st n; Random.State.int st n |]

(* a non-trivial valid store: deep enough (d=8, h=2, depth 4) that every
   register kind — inner children, (0,·) cells, back-pointers — exists *)
let populated_store seed =
  let st = Random.State.make [| seed |] in
  let t = S.create ~n ~k ~epsilon:0.5 in
  for i = 0 to 15 + Random.State.int st 16 do
    S.add t (random_key st) i
  done;
  t

let check_valid what t =
  match S.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" what e

(* -------- validate on healthy stores -------- *)

let test_validate_random_schedules () =
  (* 1000 random update/lookup operations, cross-checked against the
     functional oracle and validated along the way *)
  let st = Random.State.make [| 0xbeef |] in
  let t = S.create ~n ~k ~epsilon:0.5 in
  let r = ref (R.empty ~n ~k) in
  for i = 1 to 1000 do
    let key = random_key st in
    (match Random.State.int st 4 with
    | 0 -> S.remove t key; r := R.remove !r key
    | _ -> S.add t key i; r := R.add !r key i);
    let probe = random_key st in
    if S.find t probe <> R.find !r probe then
      Alcotest.failf "lookup diverges from oracle at op %d" i;
    if i mod 100 = 0 then check_valid (Printf.sprintf "after op %d" i) t
  done;
  check_valid "final" t;
  Alcotest.(check int) "cardinal agrees" (R.cardinal !r) (S.cardinal t)

(* -------- every structural fault class is caught -------- *)

let assert_fault_detected seed fault =
  let t = populated_store seed in
  check_valid "pre-injection" t;
  let c = C.create ~seed t in
  if not (C.inject c fault) then
    Alcotest.failf "%s: no injectable target in a populated store"
      (C.fault_name fault);
  match S.validate t with
  | Error _ -> ()
  | Ok () ->
      Alcotest.failf "%s: injected fault passed validate (%s)"
        (C.fault_name fault)
        (String.concat "; " (List.map snd (C.injected c)))

let test_each_fault_class_detected () =
  List.iter
    (fun fault -> List.iter (fun s -> assert_fault_detected s fault) [ 1; 7; 42 ])
    C.structural_faults

let prop_faults_detected =
  QCheck.Test.make ~name:"every injected corruption is caught by validate"
    ~count:60
    QCheck.(
      pair (int_bound 100000)
        (int_bound (List.length C.structural_faults - 1)))
    (fun (seed, fi) ->
      assert_fault_detected seed (List.nth C.structural_faults fi);
      true)

let test_probabilistic_corruption_detected () =
  (* p_corrupt = 1: the very first non-dropped update corrupts *)
  let t = S.create ~n ~k ~epsilon:0.5 in
  S.add t [| 1; 2 |] 0;
  let c = C.create ~p_corrupt:1.0 ~seed:5 t in
  C.add c [| 3; 4 |] 1;
  Alcotest.(check bool) "corruption logged" true (C.corrupted c > 0);
  match S.validate (C.store c) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "probabilistic corruption passed validate"

(* -------- dropped updates: structurally valid, semantically wrong -------- *)

let test_dropped_updates_diverge_from_oracle () =
  let t = S.create ~n ~k ~epsilon:0.5 in
  let c = C.create ~p_drop:0.25 ~seed:11 t in
  let r = ref (R.empty ~n ~k) in
  (* distinct keys only, adds only: any drop is a guaranteed divergence *)
  for i = 0 to 59 do
    let key = [| i mod n; (i * 7) mod n |] in
    C.add c key i;
    r := R.add !r key i
  done;
  Alcotest.(check bool) "some updates dropped" true (C.dropped c > 0);
  Alcotest.(check int) "drops are logged" (C.dropped c)
    (List.length
       (List.filter
          (fun (f, _) -> f = C.Dropped_add || f = C.Dropped_remove)
          (C.injected c)));
  (* the corrupted-by-omission store still looks healthy... *)
  check_valid "dropped updates keep the structure valid" t;
  (* ...and only the oracle exposes the lie *)
  Alcotest.(check bool) "cardinal diverges" true
    (S.cardinal t < R.cardinal !r);
  let missing =
    List.filter (fun (key, _) -> not (S.mem t key)) (R.to_list !r)
  in
  Alcotest.(check int) "every dropped add is missing" (C.dropped c)
    (List.length missing)

(* -------- harness plumbing -------- *)

let test_chaos_passthrough_and_validation () =
  let t = S.create ~n ~k ~epsilon:0.5 in
  let c = C.create ~seed:3 t in
  (* zero probabilities: a transparent wrapper *)
  for i = 0 to 19 do
    C.add c [| i; i |] i
  done;
  Alcotest.(check int) "no faults" 0 (List.length (C.injected c));
  Alcotest.(check bool) "find through wrapper" true
    (C.find c [| 7; 7 |] = S.Value 7);
  Alcotest.(check bool) "mem through wrapper" true (C.mem c [| 8; 8 |]);
  C.remove c [| 7; 7 |];
  Alcotest.(check bool) "remove applied" false (C.mem c [| 7; 7 |]);
  check_valid "transparent wrapper" t;
  (match C.create ~p_drop:1.5 ~seed:0 t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p_drop > 1 accepted");
  (* injection on a fresh 1-key store: dropped classes are never
     injectable on demand *)
  Alcotest.(check bool) "inject Dropped_add = false" false
    (C.inject c C.Dropped_add)

let test_cardinal_skew_detected () =
  let t = populated_store 9 in
  let card = S.cardinal t in
  let c = C.create ~seed:9 t in
  Alcotest.(check bool) "skew injects" true (C.inject c C.Skew_cardinal);
  Alcotest.(check int) "cardinal visibly skewed" (card + 1) (S.cardinal t);
  match S.validate t with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cardinality skew passed validate"

(* -------- the Stale_view class -------- *)

let test_stale_view_detected () =
  (* not a register fault: inject must decline at the store level *)
  let c = C.create ~seed:3 (populated_store 3) in
  Alcotest.(check bool) "store-level inject declines" false
    (C.inject c C.Stale_view);
  Alcotest.(check string) "named" "stale-view" (C.fault_name C.Stale_view);
  (* engine level: a paranoid handle whose graph moved on without
     maintenance must catch itself lying on the first stale emission *)
  let open Nd_graph in
  let g = Gen.randomly_color ~seed:5 ~colors:2 (Gen.grid 5 5) in
  let phi = Nd_logic.Parse.formula "E(x,y)" in
  let eng = Nd_engine.prepare ~paranoid:true g phi in
  (* (0,1) is an early solution; remove that edge behind the engine's
     back, so the stale pipeline still emits it *)
  Nd_engine.Inspect.unsafe_inject_stale_view eng (Cgraph.Remove_edge (0, 1));
  (match Nd_engine.to_list eng with
  | _ -> Alcotest.fail "stale view served without paranoid detection"
  | exception Nd_error.Internal_invariant _ -> ());
  (* the same injection absorbed through the real update pipeline is
     fine: paranoid stays quiet and answers are exact *)
  let eng2 = Nd_engine.prepare ~paranoid:true g phi in
  Nd_engine.update eng2 (Cgraph.Remove_edge (0, 1));
  let g' = Cgraph.apply g (Cgraph.Remove_edge (0, 1)) in
  Alcotest.(check bool) "maintained update passes paranoid" true
    (Nd_engine.to_list eng2 = Nd_engine.to_list (Nd_engine.prepare g' phi))

let suite =
  [
    Alcotest.test_case "validate on 1k random update/lookup schedule" `Quick
      test_validate_random_schedules;
    Alcotest.test_case "stale view declined by store, caught by paranoid"
      `Quick test_stale_view_detected;
    Alcotest.test_case "each structural fault class detected" `Quick
      test_each_fault_class_detected;
    QCheck_alcotest.to_alcotest prop_faults_detected;
    Alcotest.test_case "probabilistic corruption detected" `Quick
      test_probabilistic_corruption_detected;
    Alcotest.test_case "dropped updates diverge from oracle" `Quick
      test_dropped_updates_diverge_from_oracle;
    Alcotest.test_case "transparent wrapper + bad probabilities" `Quick
      test_chaos_passthrough_and_validation;
    Alcotest.test_case "cardinality skew detected" `Quick
      test_cardinal_skew_detected;
  ]
