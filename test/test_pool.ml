(* The domain work pool (DESIGN S14): qcheck equivalence with the
   sequential maps across job counts, exception transparency, and
   reuse across many runs — the properties the parallel prepare path
   leans on. *)

open Nd_util

(* --- map ≡ List.map across job counts ------------------------------ *)

let prop_map_model =
  QCheck.Test.make ~name:"Pool.map = List.map for every job count"
    ~count:100
    QCheck.(pair (int_range 1 8) (list (int_bound 1000)))
    (fun (jobs, xs) ->
      let f x = (x * 2654435761) lxor (x lsr 3) in
      let expected = List.map f xs in
      Pool.with_pool ~jobs (fun p -> Pool.map p f xs) = expected)

let prop_map_array_model =
  QCheck.Test.make ~name:"Pool.map_array = Array.map for every job count"
    ~count:100
    QCheck.(pair (int_range 1 8) (array (int_bound 1000)))
    (fun (jobs, xs) ->
      let f x = string_of_int (x + 1) in
      let expected = Array.map f xs in
      Pool.with_pool ~jobs (fun p -> Pool.map_array p f xs) = expected)

(* --- run covers every index exactly once --------------------------- *)

let test_run_covers_all () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              Pool.run p ~n (fun i -> hits.(i) <- hits.(i) + 1);
              for i = 0 to n - 1 do
                if hits.(i) <> 1 then
                  Alcotest.failf "jobs=%d n=%d: index %d ran %d times" jobs n
                    i hits.(i)
              done)
            [ 0; 1; 2; 7; 64; 257 ]))
    [ 1; 2; 3; 8 ]

(* --- exceptions cross the domain boundary -------------------------- *)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          (match Pool.run p ~n:16 (fun i -> if i = 11 then raise (Boom i)) with
          | () -> Alcotest.fail "expected Boom to propagate"
          | exception Boom 11 -> ());
          (* the pool survives a failed run: the next run is clean *)
          let sum = Atomic.make 0 in
          Pool.run p ~n:16 (fun i -> ignore (Atomic.fetch_and_add sum i));
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d pool usable after exception" jobs)
            120 (Atomic.get sum)))
    [ 1; 4 ]

(* --- reuse: many runs on one pool ---------------------------------- *)

let test_reuse () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check int) "jobs accessor" 4 (Pool.jobs p);
      for round = 1 to 50 do
        let got = Pool.map p (fun x -> x * round) [ 1; 2; 3; 4; 5 ] in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map (fun x -> x * round) [ 1; 2; 3; 4; 5 ])
          got
      done)

let test_validation () =
  (match Pool.create ~jobs:0 with
  | _ -> Alcotest.fail "jobs=0 must be rejected"
  | exception Invalid_argument _ -> ());
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  (* shutdown is idempotent *)
  Pool.shutdown p

let suite =
  [
    QCheck_alcotest.to_alcotest prop_map_model;
    QCheck_alcotest.to_alcotest prop_map_array_model;
    Alcotest.test_case "run covers every index once" `Quick
      test_run_covers_all;
    Alcotest.test_case "exceptions propagate, pool survives" `Quick
      test_exception_propagates;
    Alcotest.test_case "pool reuse across runs" `Quick test_reuse;
    Alcotest.test_case "create validation + idempotent shutdown" `Quick
      test_validation;
  ]
