(* Prometheus text exposition: render/validate round-trip, histogram
   consistency with the source registry, and snapshot atomicity. *)

open Nd_util
module P = Nd_trace.Prometheus

let reset () =
  Metrics.reset ();
  Metrics.enable ()

let lines text = String.split_on_char '\n' text

let find_sample text prefix =
  List.find_opt
    (fun l ->
      String.length l >= String.length prefix
      && String.sub l 0 (String.length prefix) = prefix)
    (lines text)

let sample_value line =
  match String.rindex_opt line ' ' with
  | None -> Alcotest.failf "no value on %S" line
  | Some i ->
      float_of_string (String.sub line (i + 1) (String.length line - i - 1))

(* --- round-trip ---------------------------------------------------- *)

let test_roundtrip () =
  reset ();
  Metrics.add (Metrics.counter "prom.hits") 3;
  Metrics.add (Metrics.counter ~ops:true "prom.work") 11;
  let h = Metrics.hist "prom.delay" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 3; 9; 100_000 ];
  ignore (Metrics.phase "prom.phase" (fun () -> ()));
  let text = P.render_current () in
  (match P.validate text with
  | Ok n -> Alcotest.(check bool) "several families" true (n > 3)
  | Error e -> Alcotest.failf "rendered exposition invalid: %s" e);
  (* counter value survives *)
  (match find_sample text "nd_prom_hits_total " with
  | Some l -> Alcotest.(check int) "counter value" 3 (int_of_float (sample_value l))
  | None -> Alcotest.fail "nd_prom_hits_total missing");
  (* ops clock aggregates ~ops counters *)
  (match find_sample text "nd_ops_total " with
  | Some l -> Alcotest.(check int) "ops clock" 11 (int_of_float (sample_value l))
  | None -> Alcotest.fail "nd_ops_total missing");
  Metrics.reset ();
  Metrics.disable ()

(* --- histogram consistency with the source ------------------------- *)

let test_histogram_consistency () =
  reset ();
  let h = Metrics.hist "prom.h" in
  let values = [ 0; 1; 2; 2; 5; 16; 700; 100_000 ] in
  List.iter (Metrics.observe h) values;
  let text = P.render_current () in
  (match P.validate text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "invalid: %s" e);
  let count = List.length values in
  let sum = List.fold_left ( + ) 0 values in
  (match find_sample text "nd_prom_h_count " with
  | Some l -> Alcotest.(check int) "_count" count (int_of_float (sample_value l))
  | None -> Alcotest.fail "_count missing");
  (match find_sample text "nd_prom_h_sum " with
  | Some l -> Alcotest.(check int) "_sum" sum (int_of_float (sample_value l))
  | None -> Alcotest.fail "_sum missing");
  (match find_sample text "nd_prom_h_bucket{le=\"+Inf\"} " with
  | Some l ->
      Alcotest.(check int) "+Inf = count" count (int_of_float (sample_value l))
  | None -> Alcotest.fail "+Inf bucket missing");
  (* cumulative buckets: le="2" counts observations <= 2 *)
  (match find_sample text "nd_prom_h_bucket{le=\"2\"} " with
  | Some l -> Alcotest.(check int) "le=2" 4 (int_of_float (sample_value l))
  | None -> Alcotest.fail "le=2 bucket missing");
  (* saturation: 100_000 > clamp lands in the last finite bucket *)
  (match
     find_sample text
       (Printf.sprintf "nd_prom_h_bucket{le=\"%d\"} " Metrics.hist_clamp)
   with
  | Some l ->
      Alcotest.(check int) "clamp bucket holds everything" count
        (int_of_float (sample_value l))
  | None -> Alcotest.fail "clamp bucket missing");
  Metrics.reset ();
  Metrics.disable ()

(* --- validator rejections ------------------------------------------ *)

let test_validator_rejects () =
  let bad what s =
    match P.validate s with
    | Ok _ -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  bad "sample without TYPE/HELP" "nd_x_total 1\n";
  bad "TYPE before HELP" "# TYPE nd_x counter\n# HELP nd_x x.\nnd_x 1\n";
  bad "bad metric name"
    "# HELP nd-bad x.\n# TYPE nd-bad counter\nnd-bad 1\n";
  bad "non-monotone buckets"
    "# HELP nd_h h.\n# TYPE nd_h histogram\n\
     nd_h_bucket{le=\"1\"} 5\nnd_h_bucket{le=\"2\"} 3\n\
     nd_h_bucket{le=\"+Inf\"} 5\nnd_h_sum 9\nnd_h_count 5\n";
  bad "+Inf disagrees with _count"
    "# HELP nd_h h.\n# TYPE nd_h histogram\n\
     nd_h_bucket{le=\"1\"} 2\nnd_h_bucket{le=\"+Inf\"} 2\n\
     nd_h_sum 2\nnd_h_count 3\n";
  bad "histogram without _sum"
    "# HELP nd_h h.\n# TYPE nd_h histogram\n\
     nd_h_bucket{le=\"+Inf\"} 1\nnd_h_count 1\n";
  (* and a well-formed document is accepted *)
  match
    P.validate
      "# HELP nd_ok x.\n# TYPE nd_ok counter\nnd_ok 1\n\
       # HELP nd_h h.\n# TYPE nd_h histogram\n\
       nd_h_bucket{le=\"1\"} 2\nnd_h_bucket{le=\"+Inf\"} 2\n\
       nd_h_sum 2\nnd_h_count 2\n"
  with
  | Ok n -> Alcotest.(check int) "two families" 2 n
  | Error e -> Alcotest.failf "rejected a valid document: %s" e

(* --- snapshots ----------------------------------------------------- *)

let test_snapshot_immutable () =
  reset ();
  let c = Metrics.counter "prom.snap" in
  Metrics.add c 5;
  let h = Metrics.hist "prom.snap_h" in
  Metrics.observe h 3;
  let snap = Metrics.snapshot () in
  (* mutate and reset the live registry: the snapshot must not move *)
  Metrics.add c 100;
  Metrics.observe h 9;
  Metrics.reset ();
  let find name =
    List.find
      (fun cs -> cs.Metrics.c_name = name)
      snap.Metrics.s_counters
  in
  Alcotest.(check int) "snapshot counter unmoved" 5 (find "prom.snap").Metrics.c_value;
  let hs =
    List.find (fun x -> x.Metrics.h_name = "prom.snap_h") snap.Metrics.s_hists
  in
  Alcotest.(check int) "snapshot hist count unmoved" 1 hs.Metrics.h_count;
  Alcotest.(check int) "snapshot hist sum unmoved" 3 hs.Metrics.h_sum;
  (* rendering the stale snapshot still validates *)
  (match P.validate (P.render snap) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "stale snapshot render invalid: %s" e);
  Metrics.reset ();
  Metrics.disable ()

let test_reset_keeps_registrations () =
  reset ();
  Metrics.add (Metrics.counter "prom.keep") 2;
  Metrics.reset ();
  (* after a reset, the registration is still visible to snapshots (and
     hence to scrapes) with value 0 — series never vanish mid-flight *)
  let snap = Metrics.snapshot () in
  match
    List.find_opt
      (fun cs -> cs.Metrics.c_name = "prom.keep")
      snap.Metrics.s_counters
  with
  | Some cs ->
      Alcotest.(check int) "zero after reset" 0 cs.Metrics.c_value;
      Metrics.disable ()
  | None -> Alcotest.fail "registration lost by reset"

let suite =
  [
    Alcotest.test_case "render/validate round-trip" `Quick test_roundtrip;
    Alcotest.test_case "histogram _sum/_count/bucket consistency" `Quick
      test_histogram_consistency;
    Alcotest.test_case "validator rejects malformed text" `Quick
      test_validator_rejects;
    Alcotest.test_case "snapshots are immutable" `Quick test_snapshot_immutable;
    Alcotest.test_case "reset keeps registrations for scrapes" `Quick
      test_reset_keeps_registrations;
  ]
