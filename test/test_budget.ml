(* Resource budgets, graceful degradation, and the structured error
   taxonomy: a budget-exhausted prepare must yield a degraded but
   *exact* handle (differentially checked against the naive evaluator),
   and exhaustion during answering must raise the typed error naming
   the right phase. *)

open Nd_graph
open Nd_logic
module Budget = Nd_util.Budget

let graph () =
  Gen.randomly_color ~seed:17 ~colors:3 (Gen.bounded_degree ~seed:17 300 ~max_degree:3)

let naive_solutions g phi =
  Nd_eval.Naive.eval_all (Nd_eval.Naive.ctx g) ~vars:(Fo.free_vars phi) phi

let test_one_op_budget_degrades_but_stays_exact () =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let b = Budget.create ~max_ops:1 () in
  let eng = Nd_engine.prepare ~budget:b g phi in
  Alcotest.(check bool) "degraded" true (Nd_engine.degraded eng);
  (match Nd_engine.degradation eng with
  | `Fallback reason ->
      Alcotest.(check bool) "reason names a phase" true
        (String.length reason > 0)
  | `None | `Stale_rebuild _ -> Alcotest.fail "degradation accessor not `Fallback");
  (match Budget.exhausted b with
  | Some info ->
      Alcotest.(check bool) "exhausted phase recorded" true
        (info.Nd_error.phase <> "" && info.Nd_error.phase <> "unknown");
      Alcotest.(check bool) "resource is ops" true
        (info.Nd_error.resource = Nd_error.Ops)
  | None -> Alcotest.fail "budget not marked exhausted");
  (* degraded ≡ naive: the fallback handle answers exactly *)
  let got = Nd_engine.to_list eng in
  let expected = naive_solutions g phi in
  Alcotest.(check bool) "solutions non-trivial" true (expected <> []);
  Alcotest.(check bool) "degraded enumeration ≡ naive" true (got = expected);
  (* and test/next behave on the degraded handle too *)
  let sol = List.hd expected in
  Alcotest.(check bool) "degraded test" true (Nd_engine.test eng sol);
  Alcotest.(check bool) "degraded next" true
    (Nd_engine.next eng sol = Some sol)

let test_degraded_matches_full_pipeline () =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) > 2 & C1(y)" in
  let full = Nd_engine.prepare g phi in
  let degraded =
    Nd_engine.prepare ~budget:(Budget.create ~max_ops:1 ()) g phi
  in
  Alcotest.(check bool) "full not degraded" false (Nd_engine.degraded full);
  Alcotest.(check bool) "handle degraded" true (Nd_engine.degraded degraded);
  Alcotest.(check bool) "same solutions" true
    (Nd_engine.to_list full = Nd_engine.to_list degraded)

let test_degraded_sentence () =
  let g = graph () in
  (* pre-exhaust the budget (sentences over pure edge atoms may not
     advance the ops clock themselves, but an exhausted budget fails
     fast on every cooperative probe) *)
  let exhaust () =
    let b = Budget.create ~max_ops:1 () in
    (try
       Budget.with_installed b (fun () ->
           ignore (Nd_engine.prepare g (Parse.formula "dist(x,y) <= 2")))
     with Nd_error.Budget_exceeded _ -> ());
    Alcotest.(check bool) "pre-exhausted" true (Budget.exhausted b <> None);
    b
  in
  let phi = Parse.formula "exists x y. E(x,y)" in
  let eng = Nd_engine.prepare ~budget:(exhaust ()) g phi in
  Alcotest.(check bool) "sentence degraded" true (Nd_engine.degraded eng);
  (* still model-checks exactly, on first use *)
  Alcotest.(check bool) "degraded sentence holds" true (Nd_engine.holds eng);
  let no = Parse.formula "exists x. E(x,x)" in
  let eng_no = Nd_engine.prepare ~budget:(exhaust ()) g no in
  Alcotest.(check bool) "sentence degraded (false case)" true
    (Nd_engine.degraded eng_no);
  Alcotest.(check bool) "degraded false sentence" false (Nd_engine.holds eng_no)

let test_timeout_budget () =
  let g = Gen.randomly_color ~seed:3 ~colors:3 (Gen.grid 40 40) in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let b = Budget.create ~timeout_ms:1 () in
  let eng = Nd_engine.prepare ~budget:b g phi in
  Alcotest.(check bool) "wall-clock budget degrades" true
    (Nd_engine.degraded eng);
  match Budget.exhausted b with
  | Some info ->
      Alcotest.(check bool) "resource is time" true
        (info.Nd_error.resource = Nd_error.Time)
  | None -> Alcotest.fail "budget not marked exhausted"

let test_generous_budget_is_invisible () =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let b = Budget.create ~max_ops:max_int ~timeout_ms:3_600_000 () in
  let eng = Nd_engine.prepare ~budget:b g phi in
  Alcotest.(check bool) "not degraded" false (Nd_engine.degraded eng);
  Alcotest.(check bool) "compiled as usual" true (Nd_engine.compiled eng);
  let got = Budget.with_installed b (fun () -> Nd_engine.to_list eng) in
  Alcotest.(check bool) "same solutions under generous budget" true
    (got = naive_solutions g phi)

let test_answering_exhaustion_raises () =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare g phi in
  let b = Budget.create ~max_ops:1 () in
  match
    Budget.with_installed b (fun () ->
        Budget.enter "answer";
        Nd_engine.to_list eng)
  with
  | exception Nd_error.Budget_exceeded info ->
      Alcotest.(check string) "phase" "answer" info.Nd_error.phase;
      Alcotest.(check bool) "used > limit" true
        (info.Nd_error.used > info.Nd_error.limit)
  | _ -> Alcotest.fail "enumeration under a 1-op budget did not trip"

let test_renew_and_stickiness () =
  let b = Budget.create ~max_ops:1 () in
  (* no ?budget argument: the ambient installed budget raises raw *)
  (match
     Budget.with_installed b (fun () ->
         ignore (Nd_engine.prepare (graph ()) (Parse.formula "dist(x,y) <= 2")))
   with
  | exception Nd_error.Budget_exceeded _ -> ()
  | _ -> Alcotest.fail "preprocessing under 1 op did not trip");
  Alcotest.(check bool) "exhaustion sticky" true (Budget.exhausted b <> None);
  Budget.renew b;
  Alcotest.(check bool) "renew clears" true (Budget.exhausted b = None);
  Budget.check b (* a renewed budget passes a direct check *)

let test_stats_surface_degradation () =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let b = Budget.create ~max_ops:1 () in
  let eng = Nd_engine.prepare ~budget:b g phi in
  let s = Nd_engine.stats eng in
  Alcotest.(check bool) "stats.degraded" true s.Nd_engine.Stats.degraded;
  Alcotest.(check bool) "stats reason present" true
    (s.Nd_engine.Stats.degradation_reason <> None);
  (match s.Nd_engine.Stats.budget_exhausted with
  | Some info -> Alcotest.(check bool) "phase named" true (info.Nd_error.phase <> "")
  | None -> Alcotest.fail "stats.budget_exhausted empty");
  let js = Nd_engine.Stats.to_json s in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json degradation mode" true
    (contains "\"mode\":\"fallback\"" js);
  Alcotest.(check bool) "json budget exhausted" true
    (contains "\"exhausted\":true" js)

let test_paranoid_mode () =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare ~paranoid:true g phi in
  let sols = Nd_engine.to_list eng in
  Alcotest.(check bool) "solutions found" true (sols <> []);
  let s = Nd_engine.stats eng in
  Alcotest.(check bool) "differential checks ran" true
    (s.Nd_engine.Stats.paranoid_checks > 0);
  (* paranoid re-checks must not consume an installed budget *)
  let b = Budget.create ~timeout_ms:3_600_000 () in
  let eng2 = Nd_engine.prepare ~paranoid:true ~budget:b g phi in
  Alcotest.(check bool) "paranoid under budget" true
    (Nd_engine.to_list eng2 = sols)

let test_with_budget_scoped () =
  (* normal return: Ok, and the previous ambient budget is restored *)
  Budget.install None;
  let b = Budget.create ~max_ops:max_int () in
  (match Budget.with_budget b (fun () -> Budget.installed ()) with
  | Ok (Some inner) -> Alcotest.(check bool) "installed inside" true (inner == b)
  | Ok None -> Alcotest.fail "no budget installed inside the scope"
  | Error _ -> Alcotest.fail "generous budget tripped");
  Alcotest.(check bool) "restored to none" true (Budget.installed () = None);
  (* exhaustion: folded into Error, previous ambient restored *)
  let outer = Budget.create ~max_ops:max_int () in
  let result =
    Budget.with_installed outer (fun () ->
        let tiny = Budget.create ~max_ops:1 () in
        (* ticks only *probe*; the ops clock itself advances through
           Metrics ops counters, so drive one explicitly *)
        let work = Nd_util.Metrics.counter ~ops:true "test.with_budget" in
        let r =
          Budget.with_budget tiny (fun () ->
              Budget.enter "scope";
              for _ = 1 to 1000 do
                Nd_util.Metrics.incr work;
                Budget.tick ()
              done;
              `Unreachable)
        in
        Alcotest.(check bool) "outer re-installed after Error" true
          (match Budget.installed () with Some o -> o == outer | None -> false);
        r)
  in
  (match result with
  | Error info ->
      Alcotest.(check string) "phase recorded" "scope" info.Nd_error.phase
  | Ok _ -> Alcotest.fail "1-op budget did not trip");
  (* a foreign exception passes through, still restoring *)
  (match
     Budget.with_budget (Budget.create ~max_ops:max_int ()) (fun () ->
         raise Exit)
   with
  | exception Exit -> ()
  | _ -> Alcotest.fail "foreign exception swallowed");
  Alcotest.(check bool) "restored after foreign exception" true
    (Budget.installed () = None)

let test_error_taxonomy () =
  let info =
    { Nd_error.phase = "cover"; resource = Nd_error.Ops; limit = 1; used = 2 }
  in
  Alcotest.(check (option int)) "user error -> 2" (Some 2)
    (Nd_error.exit_code (Nd_error.User_error "x"));
  Alcotest.(check (option int)) "budget -> 3" (Some 3)
    (Nd_error.exit_code (Nd_error.Budget_exceeded info));
  Alcotest.(check (option int)) "invariant -> 4" (Some 4)
    (Nd_error.exit_code (Nd_error.Internal_invariant "x"));
  Alcotest.(check (option int)) "other -> none" None
    (Nd_error.exit_code Not_found);
  Alcotest.(check bool) "describe names phase" true
    (Nd_error.message (Nd_error.Budget_exceeded info) <> None);
  (match Budget.create ~max_ops:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive ceiling accepted");
  let b = Budget.create ~max_ops:5 () in
  Alcotest.(check bool) "limited" true (Budget.limited b);
  Alcotest.(check (option int)) "max_ops accessor" (Some 5) (Budget.max_ops b)

let suite =
  [
    Alcotest.test_case "1-op budget: degraded but exact" `Slow
      test_one_op_budget_degrades_but_stays_exact;
    Alcotest.test_case "degraded ≡ full pipeline" `Slow
      test_degraded_matches_full_pipeline;
    Alcotest.test_case "degraded sentence" `Quick test_degraded_sentence;
    Alcotest.test_case "wall-clock budget" `Quick test_timeout_budget;
    Alcotest.test_case "generous budget invisible" `Slow
      test_generous_budget_is_invisible;
    Alcotest.test_case "answering exhaustion raises" `Quick
      test_answering_exhaustion_raises;
    Alcotest.test_case "renew clears stickiness" `Quick
      test_renew_and_stickiness;
    Alcotest.test_case "stats surface degradation" `Quick
      test_stats_surface_degradation;
    Alcotest.test_case "paranoid differential sampling" `Slow
      test_paranoid_mode;
    Alcotest.test_case "with_budget scoped install" `Quick
      test_with_budget_scoped;
    Alcotest.test_case "error taxonomy and exit codes" `Quick
      test_error_taxonomy;
  ]
