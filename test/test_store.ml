(* Tests for the Storing Theorem structure (Theorem 3.1, Figure 1). *)

open Nd_util
module S = Nd_ram.Store
module R = Nd_ram.Ref_store

let fig1 () =
  let t = S.create ~n:27 ~k:1 ~epsilon:(1. /. 3.) in
  List.iter (fun x -> S.add t [| x |] x) [ 2; 4; 5; 19; 24; 25 ];
  t

(* The register contents asserted in the caption of Figure 1, under the
   BFS (level-order) node layout the figure uses. *)
let test_figure1_caption () =
  let t = S.canonicalize (fig1 ()) in
  let dump = S.dump ~pp_value:Format.pp_print_int t in
  let lines = String.split_on_char '\n' dump in
  let line i =
    List.find (fun l -> String.length l > 0 &&
                        String.starts_with ~prefix:(Printf.sprintf "R_%d:" i) l)
      lines
  in
  Alcotest.(check string) "R_1 = (1,5): first child of root starts at R_5"
    "R_1: (1, 5)" (line 1);
  Alcotest.(check string) "R_2 = (0,19): second subtree empty, next key 19"
    "R_2: (0, (19))" (line 2);
  Alcotest.(check string) "R_8 = (-1,1): back-pointer to R_1" "R_8: (-1, 1)"
    (line 8);
  Alcotest.(check string) "R_19 = (1, f(5)) = (1,5)" "R_19: (1, 5)" (line 19);
  Alcotest.(check string) "R_0: 29 registers in use"
    "R_0: 29 (next free register)" (line 0)

let test_figure1_semantics () =
  let t = fig1 () in
  Alcotest.(check int) "cardinal" 6 (S.cardinal t);
  Alcotest.(check bool) "find 5" true (S.find t [| 5 |] = S.Value 5);
  Alcotest.(check bool) "find 6 -> next 19" true (S.find t [| 6 |] = S.Next [| 19 |]);
  Alcotest.(check bool) "find 0 -> next 2" true (S.find t [| 0 |] = S.Next [| 2 |]);
  Alcotest.(check bool) "find 26 -> null" true (S.find t [| 26 |] = S.Null);
  Alcotest.(check bool) "pred_lt 19 = 5" true (S.pred_lt t [| 19 |] = Some [| 5 |]);
  Alcotest.(check bool) "pred_lt 2 = none" true (S.pred_lt t [| 2 |] = None);
  (match S.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e);
  (* removal example from Section 7.3: remove 19 *)
  S.remove t [| 19 |];
  Alcotest.(check bool) "after remove, find 6 -> 24" true
    (S.find t [| 6 |] = S.Next [| 24 |]);
  (match S.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants after remove: %s" e)

let test_epsilon_one () =
  (* ε = 1 degenerates into the flat O(n^k) cube *)
  let t = S.create ~n:10 ~k:1 ~epsilon:1.0 in
  Alcotest.(check int) "degree = n" 10 (S.degree t);
  Alcotest.(check int) "depth = 1" 1 (S.depth t);
  S.add t [| 3 |] 33;
  S.add t [| 7 |] 77;
  Alcotest.(check bool) "lookup" true (S.find t [| 3 |] = S.Value 33);
  Alcotest.(check bool) "next" true (S.find t [| 4 |] = S.Next [| 7 |]);
  match S.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_single_element_universe () =
  let t = S.create ~n:1 ~k:2 ~epsilon:0.5 in
  Alcotest.(check bool) "empty" true (S.find t [| 0; 0 |] = S.Null);
  S.add t [| 0; 0 |] "x";
  Alcotest.(check bool) "found" true (S.find t [| 0; 0 |] = S.Value "x");
  S.remove t [| 0; 0 |];
  Alcotest.(check bool) "removed" true (S.find t [| 0; 0 |] = S.Null)

let test_overwrite () =
  let t = S.create ~n:100 ~k:1 ~epsilon:0.4 in
  S.add t [| 42 |] "a";
  S.add t [| 42 |] "b";
  Alcotest.(check int) "no duplicate" 1 (S.cardinal t);
  Alcotest.(check bool) "overwritten" true (S.find t [| 42 |] = S.Value "b")

let test_iter_order () =
  let t = S.create ~n:50 ~k:2 ~epsilon:0.5 in
  let keys = [ [| 3; 9 |]; [| 0; 1 |]; [| 3; 8 |]; [| 49; 49 |]; [| 0; 0 |] ] in
  List.iteri (fun i k -> S.add t k i) keys;
  let got = List.map fst (S.to_list t) in
  let expected = List.sort Tuple.compare keys in
  Alcotest.(check bool) "iteration in lexicographic order" true
    (got = expected)

let test_space_bound () =
  (* Theorem 3.1: space ≤ c · |Dom(f)| · n^ε at all times *)
  let n = 4096 in
  let eps = 0.25 in
  let t = S.create ~n ~k:1 ~epsilon:eps in
  let rng = Random.State.make [| 11 |] in
  let inserted = ref [] in
  for i = 0 to 499 do
    let v = Random.State.int rng n in
    S.add t [| v |] i;
    if not (List.mem v !inserted) then inserted := v :: !inserted;
    let bound =
      (* each key contributes at most depth·(d+1) registers + root *)
      ((S.depth t * (S.degree t + 1)) * List.length !inserted) + S.degree t + 2
    in
    if S.space t > bound then
      Alcotest.failf "space %d exceeds bound %d after %d inserts" (S.space t)
        bound (i + 1)
  done;
  (* removals release space *)
  let before = S.space t in
  List.iter (fun v -> S.remove t [| v |]) !inserted;
  Alcotest.(check int) "empty again" 0 (S.cardinal t);
  Alcotest.(check bool) "space shrank to the bare root" true
    (S.space t < before && S.space t = S.degree t + 1)

(* Differential test against the functional model, with invariant checks. *)
let prop_differential k n epsilon =
  QCheck.Test.make
    ~name:(Printf.sprintf "store(k=%d,n=%d,eps=%.2f) = model" k n epsilon)
    ~count:60
    QCheck.(
      list
        (pair (int_bound 5)
           (list_of_size (Gen.return k) (int_bound (n - 1)))))
    (fun ops ->
      let t = S.create ~n ~k ~epsilon in
      let r = ref (R.empty ~n ~k) in
      let step = ref 0 in
      List.iter
        (fun (op, key) ->
          incr step;
          let key = Array.of_list key in
          match op with
          | 0 | 1 | 2 -> (
              S.add t key !step;
              r := R.add !r key !step)
          | 3 -> (
              S.remove t key;
              r := R.remove !r key)
          | _ ->
              if S.find t key <> R.find !r key then
                QCheck.Test.fail_report "lookup mismatch")
        ops;
      (match S.check_invariants t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report ("invariants: " ^ e));
      S.to_list t = R.to_list !r)

(* the documented no-op: removing an absent key anywhere in an
   interleaved add/remove history leaves the structure byte-identical
   (same dump), and the surviving bindings still match the model *)
let prop_absent_remove_noop =
  QCheck.Test.make ~name:"remove of absent key is a byte-identical no-op"
    ~count:80
    QCheck.(
      list
        (pair (int_bound 4) (list_of_size (Gen.return 2) (int_bound 15))))
    (fun ops ->
      let pp_value = Format.pp_print_int in
      let t = S.create ~n:16 ~k:2 ~epsilon:0.4 in
      let r = ref (R.empty ~n:16 ~k:2) in
      let step = ref 0 in
      List.iter
        (fun (op, key) ->
          incr step;
          let key = Array.of_list key in
          match op with
          | 0 | 1 ->
              S.add t key !step;
              r := R.add !r key !step
          | 2 ->
              S.remove t key;
              r := R.remove !r key
          | _ ->
              (* blind remove, but only when the model says absent *)
              if R.find !r key = S.Null then begin
                let before = S.dump ~pp_value t in
                S.remove t key;
                if S.dump ~pp_value t <> before then
                  QCheck.Test.fail_report
                    "absent-key remove changed the register state"
              end)
        ops;
      (match S.check_invariants t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report ("invariants: " ^ e));
      S.to_list t = R.to_list !r)

let prop_canonicalize_preserves =
  QCheck.Test.make ~name:"canonicalize preserves contents" ~count:50
    QCheck.(list (int_bound 63))
    (fun keys ->
      let t = S.create ~n:64 ~k:1 ~epsilon:0.34 in
      List.iter (fun v -> S.add t [| v |] (v * 2)) keys;
      let c = S.canonicalize t in
      (match S.check_invariants c with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report ("canon invariants: " ^ e));
      S.to_list c = S.to_list t && S.space c = S.space t)

let prop_succ_pred =
  QCheck.Test.make ~name:"succ_geq/succ_gt/pred_lt against model" ~count:100
    QCheck.(pair (list (int_bound 80)) (int_bound 80))
    (fun (keys, probe) ->
      let t = S.create ~n:81 ~k:1 ~epsilon:0.3 in
      List.iter (fun v -> S.add t [| v |] v) keys;
      let sorted = List.sort_uniq compare keys in
      let geq = List.find_opt (fun v -> v >= probe) sorted in
      let gt = List.find_opt (fun v -> v > probe) sorted in
      let lt = List.rev (List.filter (fun v -> v < probe) sorted) in
      S.succ_geq t [| probe |] = Option.map (fun v -> ([| v |], v)) geq
      && S.succ_gt t [| probe |] = Option.map (fun v -> ([| v |], v)) gt
      && S.pred_lt t [| probe |]
         = (match lt with [] -> None | v :: _ -> Some [| v |]))

let suite =
  [
    Alcotest.test_case "figure 1 caption registers" `Quick test_figure1_caption;
    Alcotest.test_case "figure 1 semantics + removal" `Quick test_figure1_semantics;
    Alcotest.test_case "epsilon = 1 (flat cube)" `Quick test_epsilon_one;
    Alcotest.test_case "n = 1 universe" `Quick test_single_element_universe;
    Alcotest.test_case "overwrite" `Quick test_overwrite;
    Alcotest.test_case "iteration order" `Quick test_iter_order;
    Alcotest.test_case "space bound (Theorem 3.1)" `Quick test_space_bound;
    QCheck_alcotest.to_alcotest (prop_differential 1 27 0.34);
    QCheck_alcotest.to_alcotest (prop_differential 2 16 0.5);
    QCheck_alcotest.to_alcotest (prop_differential 3 8 0.4);
    QCheck_alcotest.to_alcotest (prop_differential 2 100 0.25);
    QCheck_alcotest.to_alcotest prop_absent_remove_noop;
    QCheck_alcotest.to_alcotest prop_canonicalize_preserves;
    QCheck_alcotest.to_alcotest prop_succ_pred;
  ]
