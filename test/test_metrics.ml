(* The Metrics layer itself, plus the PR's headline property test:
   Theorem 3.1's resource bounds made empirical.  Store lookups must
   touch a register count that does NOT grow with n (constant-time
   lookup), while updates may touch O(n^eps) registers.  We measure
   register touches through the store's instrumentation histograms
   across n in {10^2, 10^3, 10^4, 10^5}. *)

open Nd_util
open Nd_ram

(* --- the metrics registry itself ----------------------------------- *)

let test_registry_basics () =
  Metrics.reset ();
  Metrics.disable ();
  let c = Metrics.counter "t.plain" in
  let cops = Metrics.counter ~ops:true "t.ops" in
  Metrics.incr c;
  Metrics.add cops 5;
  Alcotest.(check int) "disabled counters stay 0" 0 (Metrics.value c);
  Alcotest.(check int) "disabled ops stay 0" 0 (Metrics.ops ());
  Metrics.enable ();
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add cops 5;
  Alcotest.(check int) "counter counts" 2 (Metrics.value c);
  Alcotest.(check int) "only ~ops counters feed ops" 5 (Metrics.ops ());
  (* find-or-create: same name, same cell *)
  Metrics.incr (Metrics.counter "t.plain");
  Alcotest.(check int) "shared by name" 3 (Metrics.value c);
  let h = Metrics.hist "t.h" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 4; 100 ];
  let s = Metrics.hist_stats h in
  Alcotest.(check int) "hist count" 5 s.Metrics.count;
  Alcotest.(check int) "hist max" 100 s.Metrics.max;
  Alcotest.(check int) "hist p50" 3 s.Metrics.p50;
  let r = Metrics.phase "t.phase" (fun () -> 41 + 1) in
  Alcotest.(check int) "phase passes result through" 42 r;
  Alcotest.(check bool) "phase recorded" true
    (List.mem_assoc "t.phase" (Metrics.phases ()));
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.value c);
  Alcotest.(check int) "reset zeroes ops" 0 (Metrics.ops ());
  Alcotest.(check bool) "reset zeroes hists" true
    (not (List.mem_assoc "t.h" (Metrics.hists ())));
  Metrics.disable ()

(* --- Theorem 3.1 property test ------------------------------------- *)

type touch_point = {
  tn : int;
  lookup_max : int;
  update_max : int;
}

(* Exercise a k=2 store over [n]^2 and report the per-call register
   touch maxima from the instrumentation histograms. *)
let store_touches n =
  Metrics.reset ();
  Metrics.enable ();
  let epsilon = 0.5 in
  let s : int Store.t = Store.create ~n ~k:2 ~epsilon in
  let rng = Random.State.make [| n; 7 |] in
  let inserts = min n 2048 in
  for i = 1 to inserts do
    Store.add s [| Random.State.int rng n; Random.State.int rng n |] i
  done;
  for _ = 1 to 1000 do
    ignore (Store.find s [| Random.State.int rng n; Random.State.int rng n |])
  done;
  let hists = Metrics.hists () in
  Metrics.disable ();
  let stat name =
    match List.assoc_opt name hists with
    | Some st -> st
    | None -> Alcotest.failf "histogram %s missing at n=%d" name n
  in
  let lookup = stat "store.lookup_touches" in
  let update = stat "store.update_touches" in
  Alcotest.(check int) "every find observed" 1000 lookup.Metrics.count;
  Alcotest.(check int) "every add observed" inserts update.Metrics.count;
  { tn = n; lookup_max = lookup.Metrics.max; update_max = update.Metrics.max }

let test_store_touch_scaling () =
  let points = List.map store_touches [ 100; 1_000; 10_000; 100_000 ] in
  let small = List.hd points in
  List.iter
    (fun p ->
      (* Theorem 3.1(1): lookup cost is independent of n.  The trie
         depth is k·h with h = ceil(1/eps) fixed, so the worst-case
         register touches per lookup must not grow from n=100 to
         n=100000. *)
      Alcotest.(check bool)
        (Printf.sprintf "lookup touches flat at n=%d (%d vs %d)" p.tn
           p.lookup_max small.lookup_max)
        true
        (p.lookup_max <= small.lookup_max);
      (* Theorem 3.1(2): update cost is O(n^eps).  Each of the k·h
         nodes on the path has d+1 = ceil(n^eps)+1 registers; allow a
         small constant factor over that envelope. *)
      let d = int_of_float (ceil (float_of_int p.tn ** 0.5)) in
      let envelope = 6 * (d + 1) * (2 * 2 + 1) in
      Alcotest.(check bool)
        (Printf.sprintf "update touches within O(n^eps) at n=%d (%d <= %d)"
           p.tn p.update_max envelope)
        true
        (p.update_max <= envelope))
    points;
  (* and the bound is genuinely sublinear: at n=10^5 an update must
     touch far fewer than n registers *)
  let big = List.nth points 3 in
  Alcotest.(check bool) "update touches sublinear" true
    (big.update_max < big.tn / 10)

(* --- concurrency regression (DESIGN S14) --------------------------- *)

(* Domains hammering their own shards must never lose an increment:
   with no concurrent reset, the merged totals are exact. *)
let test_sharded_counts_exact () =
  Metrics.reset ();
  Metrics.enable ();
  let c = Metrics.counter ~ops:true "par.exact" in
  let per_domain = 50_000 and domains = 4 in
  let worker i () =
    Metrics.set_slot (i + 1);
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (domains * per_domain)
    (Metrics.value c);
  Alcotest.(check int) "ops sees every shard" (domains * per_domain)
    (Metrics.ops ());
  Metrics.disable ()

(* reset/snapshot racing live increments, phases and observations must
   neither crash nor corrupt the registry: afterwards the cells still
   work and a final reset really zeroes every shard (not just the
   spawning domain's slot 0 — worker-shard residue must not resurface
   in later snapshots). *)
let test_reset_snapshot_under_fire () =
  Metrics.reset ();
  Metrics.enable ();
  let c = Metrics.counter ~ops:true "par.fire" in
  let h = Metrics.hist "par.fire_h" in
  let stop = Atomic.make false in
  let worker i () =
    Metrics.set_slot (i + 1);
    while not (Atomic.get stop) do
      Metrics.incr c;
      Metrics.observe h 3;
      ignore (Metrics.phase "par.fire_p" (fun () -> ()))
    done
  in
  let ds = List.init 3 (fun i -> Domain.spawn (worker i)) in
  for _ = 1 to 200 do
    let s = Metrics.snapshot () in
    (* a snapshot is internally consistent: every counter it reports
       is one it named *)
    List.iter
      (fun cs ->
        if String.length cs.Metrics.c_name = 0 then
          Alcotest.fail "snapshot tore a counter name")
      s.Metrics.s_counters;
    Metrics.reset ()
  done;
  Atomic.set stop true;
  List.iter Domain.join ds;
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes every shard" 0 (Metrics.value c);
  Alcotest.(check int) "reset zeroes ops across shards" 0 (Metrics.ops ());
  (* the registry still functions after the storm *)
  Metrics.incr c;
  Alcotest.(check int) "registry alive after race" 1 (Metrics.value c);
  Metrics.disable ()

let suite =
  [
    Alcotest.test_case "registry basics" `Quick test_registry_basics;
    Alcotest.test_case "Theorem 3.1 register-touch scaling" `Slow
      test_store_touch_scaling;
    Alcotest.test_case "sharded counters lose nothing" `Quick
      test_sharded_counts_exact;
    Alcotest.test_case "reset/snapshot safe under concurrent fire" `Quick
      test_reset_snapshot_under_fire;
  ]
