(* The flat-bank register store (DESIGN S18) against two oracles:

   - [Nd_ram.Boxed_store], the boxed implementation it replaced, kept
     verbatim in-tree.  Both register their probes under the same
     Metrics names, so identical operation histories must produce
     bit-identical counters AND touch histograms — the Theorem 3.1
     cost-model contract of the refactor.
   - [Nd_ram.Ref_store], the functional model, for contents.

   Plus the flat-only seams: arena compaction must preserve the dump
   byte-for-byte, and the Raw bank codec must round-trip. *)

module S = Nd_ram.Store
module B = Nd_ram.Boxed_store
module R = Nd_ram.Ref_store
module Metrics = Nd_util.Metrics

let pp_value = Format.pp_print_int

(* one op script replayed verbatim on every implementation *)
type op = Add of int array * int | Remove of int array | Probe of int array

let script ~seed ~nops ~n ~k =
  let st = Random.State.make [| seed; nops; n; k |] in
  List.init nops (fun i ->
      let key = Array.init k (fun _ -> Random.State.int st n) in
      match Random.State.int st 6 with
      | 0 | 1 | 2 -> Add (key, i)
      | 3 -> Remove key
      | _ -> Probe key)

(* -------- dump differential: flat = boxed, register for register ---- *)

let replay_flat ~n ~k ~epsilon ops =
  let t = S.create ~n ~k ~epsilon in
  List.iter
    (function
      | Add (key, v) -> S.add t key v
      | Remove key -> S.remove t key
      | Probe key ->
          ignore (S.find t key);
          ignore (S.succ_geq t key);
          ignore (S.succ_gt t key);
          ignore (S.pred_lt t key))
    ops;
  t

let replay_boxed ~n ~k ~epsilon ops =
  let t = B.create ~n ~k ~epsilon in
  List.iter
    (function
      | Add (key, v) -> B.add t key v
      | Remove key -> B.remove t key
      | Probe key ->
          ignore (B.find t key);
          ignore (B.succ_geq t key);
          ignore (B.succ_gt t key);
          ignore (B.pred_lt t key))
    ops;
  t

let replay_model ~n ~k ops =
  List.fold_left
    (fun r op ->
      match op with
      | Add (key, v) -> R.add r key v
      | Remove key -> R.remove r key
      | Probe _ -> r)
    (R.empty ~n ~k) ops

let prop_flat_equals_boxed k n epsilon =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "flat = boxed dumps (k=%d, n=%d, eps=%.2f)" k n epsilon)
    ~count:40
    QCheck.(pair small_nat (int_bound 120))
    (fun (seed, nops) ->
      let ops = script ~seed ~nops ~n ~k in
      let f = replay_flat ~n ~k ~epsilon ops in
      let b = replay_boxed ~n ~k ~epsilon ops in
      (match S.check_invariants f with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report ("flat invariants: " ^ e));
      if S.dump ~pp_value f <> B.dump ~pp_value b then
        QCheck.Test.fail_report "flat and boxed register dumps differ";
      let r = replay_model ~n ~k ops in
      if S.to_list f <> R.to_list r then
        QCheck.Test.fail_report "flat contents differ from the model";
      if S.cardinal f <> B.cardinal b || S.space f <> B.space b then
        QCheck.Test.fail_report "cardinal/space differ";
      true)

(* -------- probe-count differential: bit-identical cost model -------- *)

let store_counters snap =
  List.filter_map
    (fun c ->
      if String.length c.Metrics.c_name >= 6
         && String.sub c.Metrics.c_name 0 6 = "store."
      then Some (c.Metrics.c_name, c.Metrics.c_value)
      else None)
    snap.Metrics.s_counters

let store_hists snap =
  List.filter_map
    (fun h ->
      if String.length h.Metrics.h_name >= 6
         && String.sub h.Metrics.h_name 0 6 = "store."
      then Some (h.Metrics.h_name, Array.copy h.Metrics.h_buckets)
      else None)
    snap.Metrics.s_hists

let measured f =
  let was = Metrics.enabled () in
  Metrics.enable ();
  Metrics.reset ();
  ignore (f ());
  let snap = Metrics.snapshot () in
  Metrics.reset ();
  if not was then Metrics.disable ();
  snap

let test_probe_differential () =
  List.iter
    (fun (seed, nops, n, k, epsilon) ->
      let ops = script ~seed ~nops ~n ~k in
      let sb = measured (fun () -> replay_boxed ~n ~k ~epsilon ops) in
      let sf = measured (fun () -> replay_flat ~n ~k ~epsilon ops) in
      let label = Printf.sprintf "seed=%d n=%d k=%d" seed n k in
      List.iter2
        (fun (name_b, v_b) (name_f, v_f) ->
          Alcotest.(check string) (label ^ ": counter names") name_b name_f;
          Alcotest.(check int) (label ^ ": " ^ name_b) v_b v_f)
        (store_counters sb) (store_counters sf);
      Alcotest.(check int) (label ^ ": ops clock") sb.Metrics.s_ops
        sf.Metrics.s_ops;
      List.iter2
        (fun (name_b, buck_b) (name_f, buck_f) ->
          Alcotest.(check string) (label ^ ": hist names") name_b name_f;
          Alcotest.(check bool)
            (label ^ ": " ^ name_b ^ " buckets bit-identical")
            true
            (buck_b = buck_f))
        (store_hists sb) (store_hists sf))
    [
      (11, 300, 27, 1, 0.34);
      (23, 200, 16, 2, 0.5);
      (37, 120, 8, 3, 0.4);
      (53, 400, 100, 2, 0.25);
      (71, 500, 64, 1, 1.0);
    ]

(* -------- flat-only seams -------------------------------------- *)

(* arena compaction moves interned keys/values between slots but never
   touches register numbering: the dump must be byte-identical *)
let prop_compact_preserves_dump =
  QCheck.Test.make ~name:"arena compaction preserves the dump" ~count:60
    QCheck.(pair small_nat (int_bound 150))
    (fun (seed, nops) ->
      let n = 16 and k = 2 and epsilon = 0.4 in
      let ops = script ~seed ~nops ~n ~k in
      let t = replay_flat ~n ~k ~epsilon ops in
      let before = S.dump ~pp_value t in
      S.Raw.compact t;
      (match S.check_invariants t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report ("post-compact invariants: " ^ e));
      if S.dump ~pp_value t <> before then
        QCheck.Test.fail_report "compaction changed the register dump";
      true)

(* canonicalize on the flat layout: contents and space preserved,
   result idempotent under a second canonicalize *)
let prop_canonicalize_flat =
  QCheck.Test.make ~name:"flat canonicalize preserves contents" ~count:60
    QCheck.(pair small_nat (int_bound 150))
    (fun (seed, nops) ->
      let n = 27 and k = 2 and epsilon = 0.34 in
      let ops = script ~seed ~nops ~n ~k in
      let t = replay_flat ~n ~k ~epsilon ops in
      let c = S.canonicalize t in
      (match S.check_invariants c with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report ("canon invariants: " ^ e));
      if S.to_list c <> S.to_list t then
        QCheck.Test.fail_report "canonicalize changed contents";
      if S.space c <> S.space t then
        QCheck.Test.fail_report "canonicalize changed space";
      if S.dump ~pp_value (S.canonicalize c) <> S.dump ~pp_value c then
        QCheck.Test.fail_report "canonicalize is not idempotent";
      true)

(* the snapshot seam: export the banks word by word, reimport through
   the vetting gate, and the unit store must answer identically *)
let prop_raw_roundtrip =
  QCheck.Test.make ~name:"Raw bank codec round-trips" ~count:60
    QCheck.(pair small_nat (int_bound 150))
    (fun (seed, nops) ->
      let n = 25 and k = 2 and epsilon = 0.5 in
      let ops = script ~seed ~nops ~n ~k in
      let t = S.create ~n ~k ~epsilon in
      List.iter
        (function
          | Add (key, _) -> S.add t key ()
          | Remove key -> S.remove t key
          | Probe _ -> ())
        ops;
      S.Raw.compact t;
      let n', k', d, h, free, card, klen, vlen = S.Raw.dims t in
      let mk len get =
        let a =
          Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 len)
        in
        Bigarray.Array1.fill a 0;
        for i = 0 to len - 1 do
          Bigarray.Array1.set a i (get t i)
        done;
        a
      in
      let pay = mk free S.Raw.payload_word in
      let karena = mk (klen * k) S.Raw.key_word in
      let tags = Bytes.of_string (S.Raw.tags_blob t) in
      match
        S.Raw.import_unit ~n:n' ~k:k' ~epsilon ~d ~h ~free ~card ~klen ~vlen
          ~tags ~pay ~karena
      with
      | Error e -> QCheck.Test.fail_report ("import_unit rejected: " ^ e)
      | Ok t' ->
          (match S.check_invariants t' with
          | Ok () -> ()
          | Error e ->
              QCheck.Test.fail_report ("reimported invariants: " ^ e));
          if S.to_list t' <> S.to_list t then
            QCheck.Test.fail_report "reimported contents differ";
          if S.dump ~pp_value:(fun fmt () -> Format.pp_print_string fmt "()") t'
             <> S.dump ~pp_value:(fun fmt () -> Format.pp_print_string fmt "()") t
          then QCheck.Test.fail_report "reimported dump differs";
          true)

let suite =
  [
    QCheck_alcotest.to_alcotest (prop_flat_equals_boxed 1 27 0.34);
    QCheck_alcotest.to_alcotest (prop_flat_equals_boxed 2 16 0.5);
    QCheck_alcotest.to_alcotest (prop_flat_equals_boxed 3 8 0.4);
    QCheck_alcotest.to_alcotest (prop_flat_equals_boxed 2 100 0.25);
    Alcotest.test_case "probe counters + histograms bit-identical" `Quick
      test_probe_differential;
    QCheck_alcotest.to_alcotest prop_compact_preserves_dump;
    QCheck_alcotest.to_alcotest prop_canonicalize_flat;
    QCheck_alcotest.to_alcotest prop_raw_roundtrip;
  ]
