(* The fault-isolated serve loop: a session must survive malformed
   requests, budget-exhausted requests, and injected internal errors —
   answering correctly afterwards every time — and the retrying client
   must back off exponentially on transient errors only. *)

open Nd_graph
open Nd_logic
module Server = Nd_server
module Client = Nd_server.Client

let graph () = Gen.randomly_color ~seed:5 ~colors:3 (Gen.grid 5 5)

let make ?config () =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare g phi in
  (Server.create ?config eng, eng)

let terminator reply =
  match List.rev reply with
  | last :: _ -> last
  | [] -> Alcotest.fail "empty reply"

let check_ok what reply = Alcotest.(check string) what "ok" (terminator reply)

let check_err what cls reply =
  match Client.status_of_reply reply with
  | Client.Err_reply (c, _) -> Alcotest.(check string) what cls c
  | _ -> Alcotest.failf "%s: expected err %s, got %s" what cls (terminator reply)

(* ---------------- request handling ---------------- *)

let test_basic_protocol () =
  let srv, eng = make () in
  check_ok "next" (Server.handle srv "next 0,0");
  Alcotest.(check (list string)) "next payload" [ "sol 0,0"; "ok" ]
    (Server.handle srv "next 0,0");
  Alcotest.(check (list string)) "test true" [ "true"; "ok" ]
    (Server.handle srv "test 0,1");
  Alcotest.(check (list string)) "test false" [ "false"; "ok" ]
    (Server.handle srv "test 0,24");
  Alcotest.(check (list string)) "blank line ignored" [] (Server.handle srv "  ");
  (* stats reply is the engine's JSON record *)
  (match Server.handle srv "stats" with
  | [ json; "ok" ] ->
      Alcotest.(check bool) "stats is json" true
        (String.length json > 2 && json.[0] = '{')
  | r -> Alcotest.failf "stats reply: %s" (String.concat "|" r));
  ignore eng

let test_enumerate_cursor () =
  let srv, eng = make () in
  let expected = Nd_engine.to_list (Nd_engine.prepare (graph ()) (Nd_engine.query eng)) in
  let collected = ref [] in
  let complete = ref false in
  while not !complete do
    match Server.handle srv "enumerate 7" with
    | reply ->
        check_ok "page" reply;
        List.iter
          (fun line ->
            if String.length line > 4 && String.sub line 0 4 = "sol " then
              collected :=
                Array.of_list
                  (List.map int_of_string
                     (String.split_on_char ','
                        (String.sub line 4 (String.length line - 4))))
                :: !collected
            else if
              String.length line >= 3 && String.sub line 0 3 = "end"
            then
              complete :=
                String.length line > 9
                && String.sub line (String.length line - 8) 8 = "complete")
          reply
  done;
  Alcotest.(check bool) "paged enumeration = full enumeration" true
    (List.rev !collected = expected);
  (* a further page reports 0 complete; reset rewinds *)
  (match Server.handle srv "enumerate 7" with
  | [ "end 0 complete"; "ok" ] -> ()
  | r -> Alcotest.failf "post-exhaustion page: %s" (String.concat "|" r));
  check_ok "reset" (Server.handle srv "reset");
  match Server.handle srv "enumerate 3" with
  | [ _; _; _; "end 3"; "ok" ] -> ()
  | r -> Alcotest.failf "page after reset: %s" (String.concat "|" r)

let test_malformed_requests_survive () =
  let srv, _ = make () in
  check_err "unknown" "user" (Server.handle srv "frobnicate");
  check_err "bad tuple" "user" (Server.handle srv "next 0,banana");
  check_err "arity" "user" (Server.handle srv "next 0,1,2");
  check_err "range" "user" (Server.handle srv "test 0,9999");
  check_err "bad page" "user" (Server.handle srv "enumerate nope");
  check_err "inject off" "user" (Server.handle srv "inject internal");
  (* after six failures the session still answers *)
  Alcotest.(check (list string)) "still alive" [ "true"; "ok" ]
    (Server.handle srv "test 0,1");
  let c = Server.counts srv in
  Alcotest.(check int) "user errors counted" 6 c.Server.user_errors;
  Alcotest.(check int) "internal errors zero" 0 c.Server.internal_errors

let test_budget_exhaustion_survives () =
  let config =
    { Server.default_config with Server.request_budget_ops = Some 1 }
  in
  let srv, _ = make ~config () in
  (* pages big enough that the amortized probe (every 32nd tick) is
     guaranteed to run against the 1-op ceiling *)
  check_err "budget trips" "budget" (Server.handle srv "enumerate 100");
  check_err "budget trips again" "budget" (Server.handle srv "enumerate 100");
  let c = Server.counts srv in
  Alcotest.(check int) "budget errors counted" 2 c.Server.budget_errors;
  (* the ceiling is per-request config, not process state: a generous
     session on the same engine still answers *)
  let srv2, _ = make () in
  check_ok "fresh session fine" (Server.handle srv2 "next 0,0")

let test_injected_internal_error_survives () =
  let config = { Server.default_config with Server.chaos = true } in
  let srv, _ = make ~config () in
  check_err "injected invariant" "internal" (Server.handle srv "inject internal");
  check_err "injected crash" "internal" (Server.handle srv "inject crash");
  check_err "injected user" "user" (Server.handle srv "inject user");
  Alcotest.(check (list string)) "loop survived all three" [ "true"; "ok" ]
    (Server.handle srv "test 0,1");
  let c = Server.counts srv in
  Alcotest.(check int) "internal errors counted" 2 c.Server.internal_errors;
  Alcotest.(check int) "requests counted" 4 c.Server.requests

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_health_and_quit () =
  let srv, _ = make () in
  ignore (Server.handle srv "test 0,1");
  ignore (Server.handle srv "frobnicate");
  (match Server.handle srv "health" with
  | [ line; "ok" ] ->
      Alcotest.(check bool) "health summarises" true
        (String.length line > 10
        && String.sub line 0 9 = "health ok");
      (* the router's fence probe reads the tail fields: a fresh engine
         is at epoch 0 with no degradation *)
      Alcotest.(check bool) "epoch field" true (contains line " epoch=0");
      Alcotest.(check bool) "mode field" true (contains line " mode=none")
  | r -> Alcotest.failf "health reply: %s" (String.concat "|" r));
  check_ok "mutate" (Server.handle srv "update add-edge 0 7");
  (match Server.handle srv "health" with
  | [ line; "ok" ] ->
      Alcotest.(check bool) "epoch advances with mutations" true
        (contains line " epoch=1")
  | r -> Alcotest.failf "health after update: %s" (String.concat "|" r));
  Alcotest.(check bool) "not quitting" false (Server.quitting srv);
  Alcotest.(check (list string)) "quit" [ "bye" ] (Server.handle srv "quit");
  Alcotest.(check bool) "quitting" true (Server.quitting srv)

(* ---------------- observability ---------------- *)

let test_err_reply_carries_rid_and_span () =
  let srv, _ = make () in
  ignore (Server.handle srv "test 0,1");
  (match Server.handle srv "frobnicate" with
  | [ line ] ->
      (* grammar: err <class> rid=<N> span=<N> <message> *)
      (match String.split_on_char ' ' line with
      | "err" :: "user" :: rid :: span :: _ :: _ ->
          Alcotest.(check bool) "rid= prefix" true
            (String.length rid > 4 && String.sub rid 0 4 = "rid=");
          Alcotest.(check int) "rid is the request ordinal" 2
            (int_of_string (String.sub rid 4 (String.length rid - 4)));
          Alcotest.(check bool) "span= prefix" true
            (String.length span > 5 && String.sub span 0 5 = "span=");
          Alcotest.(check bool) "span id parses" true
            (match
               int_of_string_opt (String.sub span 5 (String.length span - 5))
             with
            | Some n -> n >= 0
            | None -> false)
      | _ -> Alcotest.failf "bad error grammar: %s" line);
      (* the retrying client still reads the class as the first word *)
      (match Client.status_of_reply [ line ] with
      | Client.Err_reply ("user", _) -> ()
      | _ -> Alcotest.fail "client cannot parse the enriched error")
  | r -> Alcotest.failf "error reply shape: %s" (String.concat "|" r));
  (* with tracing enabled the span id in the reply is a live span *)
  Nd_trace.enable ();
  Nd_trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Nd_trace.disable ();
      Nd_trace.clear ())
    (fun () ->
      match Server.handle srv "frobnicate" with
      | [ line ] -> (
          match String.split_on_char ' ' line with
          | "err" :: _ :: _ :: span :: _ ->
              let sid =
                int_of_string (String.sub span 5 (String.length span - 5))
              in
              Alcotest.(check bool) "nonzero span id under tracing" true
                (sid > 0);
              Alcotest.(check bool) "span recorded for the request" true
                (List.exists
                   (fun s ->
                     s.Nd_trace.sid = sid
                     && s.Nd_trace.name = "server.request")
                   (Nd_trace.spans ()))
          | _ -> Alcotest.fail "bad error grammar under tracing")
      | r -> Alcotest.failf "error reply shape: %s" (String.concat "|" r))

let test_event_log_is_jsonl () =
  let lines = ref [] in
  let config =
    {
      Server.default_config with
      Server.event_log = Some (fun l -> lines := l :: !lines);
    }
  in
  let srv, _ = make ~config () in
  ignore (Server.handle srv "test 0,1");
  ignore (Server.handle srv "frobnicate");
  ignore (Server.handle srv "quit");
  let logged = List.rev !lines in
  Alcotest.(check int) "one event per request" 3 (List.length logged);
  let field name j =
    match Nd_trace.Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "event lacks %s" name
  in
  List.iteri
    (fun i l ->
      match Nd_trace.Json.parse l with
      | Error e -> Alcotest.failf "event %d is not JSON: %s" i e
      | Ok j ->
          (match field "rid" j with
          | Nd_trace.Json.Num rid ->
              Alcotest.(check int) "rids are ordinals" (i + 1)
                (int_of_float rid)
          | _ -> Alcotest.fail "rid not a number");
          (match field "latency_us" j with
          | Nd_trace.Json.Num v ->
              Alcotest.(check bool) "latency non-negative" true (v >= 0.)
          | _ -> Alcotest.fail "latency_us not a number");
          ignore (field "cmd" j);
          ignore (field "span" j);
          ignore (field "status" j))
    logged;
  (* statuses line up with the outcomes *)
  let status l =
    match Nd_trace.Json.parse l with
    | Ok j -> (
        match Nd_trace.Json.member "status" j with
        | Some (Nd_trace.Json.Str s) -> s
        | _ -> "?")
    | Error _ -> "?"
  in
  Alcotest.(check (list string)) "statuses" [ "ok"; "user"; "bye" ]
    (List.map status logged)

let test_metrics_verb_is_prometheus () =
  Nd_util.Metrics.reset ();
  Nd_util.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Nd_util.Metrics.reset ();
      Nd_util.Metrics.disable ())
    (fun () ->
      let srv, _ = make () in
      ignore (Server.handle srv "test 0,1");
      match Server.handle srv "metrics" with
      | [] | [ _ ] -> Alcotest.fail "metrics reply empty"
      | reply ->
          check_ok "metrics terminator" reply;
          let body =
            List.filter (fun l -> l <> "ok") reply |> String.concat "\n"
          in
          (match Nd_trace.Prometheus.validate (body ^ "\n") with
          | Ok n -> Alcotest.(check bool) "families exposed" true (n > 0)
          | Error e -> Alcotest.failf "metrics body invalid: %s" e))

(* ---------------- the loop over real channels ---------------- *)

let run_session requests =
  (* drive serve over OS pipes, like the CLI does over stdin/stdout *)
  let r0, w0 = Unix.pipe () and r1, w1 = Unix.pipe () in
  let srv, _ = make ~config:{ Server.default_config with Server.chaos = true } () in
  let to_srv = Unix.out_channel_of_descr w0 in
  let from_srv = Unix.in_channel_of_descr r1 in
  let srv_in = Unix.in_channel_of_descr r0 in
  let srv_out = Unix.out_channel_of_descr w1 in
  List.iter
    (fun req ->
      output_string to_srv req;
      output_char to_srv '\n')
    requests;
  close_out to_srv;
  Server.serve srv srv_in srv_out;
  close_out srv_out;
  let lines = ref [] in
  (try
     while true do
       lines := input_line from_srv :: !lines
     done
   with End_of_file -> ());
  close_in from_srv;
  close_in srv_in;
  (try Unix.close r0 with Unix.Unix_error _ -> ());
  (srv, List.rev !lines)

let test_serve_loop_channels () =
  let srv, lines =
    run_session
      [ "test 0,1"; "garbage in"; "inject crash"; "test 0,1"; "quit"; "test 0,0" ]
  in
  (* the reply stream: ok, err user, err internal, ok, bye — and
     nothing served after quit *)
  (match lines with
  | [ "true"; "ok"; e1; e2; "true"; "ok"; "bye" ] ->
      Alcotest.(check bool) "err user" true
        (String.length e1 > 8 && String.sub e1 0 8 = "err user");
      Alcotest.(check bool) "err internal" true
        (String.length e2 > 12 && String.sub e2 0 12 = "err internal")
  | _ -> Alcotest.failf "unexpected stream: %s" (String.concat "|" lines));
  let c = Server.counts srv in
  Alcotest.(check int) "post-quit request not served" 5 c.Server.requests

let test_graceful_stop_drains () =
  (* request_stop before serve: the already-submitted request is still
     answered in full (the drain), then the loop says bye *)
  let r0, w0 = Unix.pipe () and r1, w1 = Unix.pipe () in
  let srv, _ = make () in
  let to_srv = Unix.out_channel_of_descr w0 in
  output_string to_srv "enumerate 5\nnever answered\n";
  close_out to_srv;
  Server.request_stop srv;
  let srv_in = Unix.in_channel_of_descr r0 in
  let srv_out = Unix.out_channel_of_descr w1 in
  Server.serve srv srv_in srv_out;
  close_out srv_out;
  let from_srv = Unix.in_channel_of_descr r1 in
  let lines = ref [] in
  (try
     while true do
       lines := input_line from_srv :: !lines
     done
   with End_of_file -> ());
  close_in from_srv;
  close_in srv_in;
  match List.rev !lines with
  | [ "bye" ] ->
      Alcotest.(check int) "nothing served" 0 (Server.counts srv).Server.requests
  | lines ->
      (* stop landed before any read: bye only.  (The in-flight case is
         exercised through handle+stop below.) *)
      Alcotest.failf "unexpected stream: %s" (String.concat "|" lines)

let test_stop_after_inflight_request () =
  let r0, w0 = Unix.pipe () and r1, w1 = Unix.pipe () in
  let srv, _ = make () in
  let to_srv = Unix.out_channel_of_descr w0 in
  output_string to_srv "test 0,1\nnever answered\n";
  close_out to_srv;
  let srv_in = Unix.in_channel_of_descr r0 in
  let srv_out = Unix.out_channel_of_descr w1 in
  (* emulate a signal landing mid-request: the in-flight request is
     answered in full, then the loop must bye out without reading the
     next one *)
  let reply = Server.handle srv "test 0,1" in
  Alcotest.(check (list string)) "in-flight reply complete" [ "true"; "ok" ]
    reply;
  Server.request_stop srv;
  Server.serve srv srv_in srv_out;
  close_out srv_out;
  let from_srv = Unix.in_channel_of_descr r1 in
  let lines = ref [] in
  (try
     while true do
       lines := input_line from_srv :: !lines
     done
   with End_of_file -> ());
  close_in from_srv;
  close_in srv_in;
  Alcotest.(check (list string)) "drained then bye" [ "bye" ] (List.rev !lines);
  Alcotest.(check int) "only the drained request served" 1
    (Server.counts srv).Server.requests

(* Host a socket server on an in-process thread (fork is off the table
   once domains have been spawned elsewhere in the binary), run [f]
   against the live socket, then stop gracefully — which also
   exercises the request_stop drain + thread-join path on every run. *)
let with_socket_server ?backlog ?srv f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nd_server_test_%d_%d.sock" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1000.) land 0xffffff))
  in
  let srv = match srv with Some s -> s | None -> fst (make ()) in
  let th =
    Thread.create
      (fun () -> try Server.serve_socket ?backlog srv ~path with _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop srv;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let rec wait tries =
    if Sys.file_exists path then ()
    else if tries = 0 then Alcotest.fail "server socket never appeared"
    else begin
      Unix.sleepf 0.05;
      wait (tries - 1)
    end
  in
  wait 100;
  f path srv

let with_socket_client path f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  f (Client.channel_transport ic oc)

let test_serve_socket () =
  with_socket_server @@ fun path _srv ->
  with_socket_client path @@ fun transport ->
  let r = Client.call transport "test 0,1" in
  Alcotest.(check bool) "socket round-trip ok" true
    (r.Client.status = Client.Ok_reply);
  Alcotest.(check (list string)) "socket reply" [ "true"; "ok" ] r.Client.reply;
  let r = Client.call transport "frobnicate" in
  (match r.Client.status with
  | Client.Err_reply ("user", _) -> ()
  | _ -> Alcotest.fail "socket error reply");
  Alcotest.(check (list string)) "quit over socket" [ "bye" ]
    (transport "quit")

(* ---------------- concurrent sessions ---------------- *)

(* [session] gives each connection its own enumeration cursor over the
   shared engine; the request counters stay shared. *)
let test_session_cursor_isolated () =
  let srv, _ = make () in
  let p1 = Server.handle srv "enumerate 3" in
  let s2 = Server.session srv in
  Alcotest.(check (list string)) "fresh session restarts the cursor" p1
    (Server.handle s2 "enumerate 3");
  (* the original session's cursor was not disturbed: its next page
     continues where it left off, which is also the fresh session's *)
  let p2 = Server.handle srv "enumerate 3" in
  Alcotest.(check (list string)) "cursors advance independently" p2
    (Server.handle s2 "enumerate 3");
  Alcotest.(check bool) "pages differ" true (p1 <> p2);
  Alcotest.(check int) "counters are shared" 4
    (Server.counts s2).Server.requests;
  Alcotest.(check int) "both handles see the same counts" 4
    (Server.counts srv).Server.requests

let test_backlog_validation () =
  let srv, _ = make () in
  match Server.serve_socket ~backlog:0 srv ~path:"/tmp/nd_never.sock" with
  | () -> Alcotest.fail "backlog=0 must be rejected"
  | exception Invalid_argument _ -> ()

(* Four clients hammer one socket server concurrently, each over its
   own connection.  Every client must observe the exact same fresh
   page sequence regardless of interleaving — per-connection cursors —
   and every request must be answered (thread-per-connection, shared
   request lock). *)
let test_concurrent_socket_clients () =
  with_socket_server ~backlog:16 @@ fun path srv ->
  (* the expected per-session page sequence, from an in-process twin
     of the served engine *)
  let ref_srv, _ = make () in
  let page1 = Server.handle ref_srv "enumerate 3" in
  let page2 = Server.handle ref_srv "enumerate 3" in
  Alcotest.(check bool) "reference pages sane" true (page1 <> page2);
  let failures = ref [] in
  let fail_m = Mutex.create () in
  let record msg =
    Mutex.protect fail_m (fun () -> failures := msg :: !failures)
  in
  let client i () =
    try
      with_socket_client path @@ fun t ->
      if t "enumerate 3" <> page1 then
        record (Printf.sprintf "client %d: page 1 diverged" i);
      let r = Client.call t "test 0,1" in
      if r.Client.reply <> [ "true"; "ok" ] then
        record (Printf.sprintf "client %d: test reply diverged" i);
      if t "enumerate 3" <> page2 then
        record (Printf.sprintf "client %d: page 2 diverged" i);
      if t "quit" <> [ "bye" ] then
        record (Printf.sprintf "client %d: quit not acknowledged" i)
    with e ->
      record (Printf.sprintf "client %d: %s" i (Printexc.to_string e))
  in
  let ths = List.init 4 (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join ths;
  (match !failures with
  | [] -> ()
  | msgs -> Alcotest.fail (String.concat "; " msgs));
  (* every request hit the shared counters: 4 clients x 4 requests *)
  Alcotest.(check int) "all requests accounted" 16
    (Server.counts srv).Server.requests

(* ---------------- the retrying client ---------------- *)

let test_client_retries_transient_only () =
  (* a transport that fails with a budget error twice, then succeeds *)
  let calls = ref 0 in
  let sleeps = ref [] in
  let transport _req =
    incr calls;
    if !calls <= 2 then [ "err budget ops exhausted (phase answer)" ]
    else [ "true"; "ok" ]
  in
  let policy =
    {
      Client.retries = 3;
      backoff_ms = 10;
      multiplier = 2.0;
      jitter = Nd_util.Backoff.none;
      sleep_ms = (fun ms -> sleeps := ms :: !sleeps);
    }
  in
  let r = Client.call ~policy transport "test 0,1" in
  Alcotest.(check int) "three attempts" 3 r.Client.attempts;
  Alcotest.(check bool) "final ok" true (r.Client.status = Client.Ok_reply);
  Alcotest.(check (list int)) "exponential backoff" [ 10; 20 ]
    (List.rev !sleeps);
  (* user errors are not transient: no retry *)
  calls := 0;
  sleeps := [];
  let transport _req =
    incr calls;
    [ "err user bad tuple" ]
  in
  let r = Client.call ~policy transport "next banana" in
  Alcotest.(check int) "no retry on user error" 1 r.Client.attempts;
  Alcotest.(check (list int)) "no sleeps" [] !sleeps;
  (match r.Client.status with
  | Client.Err_reply ("user", _) -> ()
  | _ -> Alcotest.fail "status should be the user error")

let test_client_gives_up_after_bounded_retries () =
  let calls = ref 0 in
  let sleeps = ref [] in
  let transport _req =
    incr calls;
    [ "err budget still exhausted" ]
  in
  let policy =
    {
      Client.retries = 3;
      backoff_ms = 5;
      multiplier = 3.0;
      jitter = Nd_util.Backoff.none;
      sleep_ms = (fun ms -> sleeps := ms :: !sleeps);
    }
  in
  let r = Client.call ~policy transport "enumerate 100" in
  Alcotest.(check int) "initial + 3 retries" 4 r.Client.attempts;
  Alcotest.(check int) "4 transport calls" 4 !calls;
  Alcotest.(check (list int)) "growing backoff" [ 5; 15; 45 ]
    (List.rev !sleeps);
  match r.Client.status with
  | Client.Err_reply ("budget", _) -> ()
  | _ -> Alcotest.fail "final status is the transient error"

let test_client_end_to_end_in_process () =
  (* the real composition used by CI: client harness over a direct
     in-process transport to a budget-limited server *)
  let tight =
    { Server.default_config with Server.request_budget_ops = Some 1 }
  in
  let srv_tight, _ = make ~config:tight () in
  let sleeps = ref [] in
  let policy =
    { Client.default_policy with Client.sleep_ms = (fun ms -> sleeps := ms :: !sleeps) }
  in
  let r = Client.call ~policy (Server.handle srv_tight) "enumerate 100" in
  Alcotest.(check int) "exhausted all retries" 4 r.Client.attempts;
  (match r.Client.status with
  | Client.Err_reply ("budget", _) -> ()
  | _ -> Alcotest.fail "tight server must exhaust budget");
  let srv, _ = make () in
  let r = Client.call ~policy (Server.handle srv) "test 0,1" in
  Alcotest.(check int) "one attempt suffices" 1 r.Client.attempts;
  Alcotest.(check bool) "ok" true (r.Client.status = Client.Ok_reply)

let test_status_of_reply () =
  Alcotest.(check bool) "ok" true
    (Client.status_of_reply [ "sol 1,2"; "ok" ] = Client.Ok_reply);
  Alcotest.(check bool) "bye" true
    (Client.status_of_reply [ "bye" ] = Client.Closed);
  Alcotest.(check bool) "empty" true (Client.status_of_reply [] = Client.Closed);
  match Client.status_of_reply [ "err budget ops exhausted" ] with
  | Client.Err_reply ("budget", msg) ->
      Alcotest.(check string) "message" "ops exhausted" msg
  | _ -> Alcotest.fail "err parse"

(* ---------------- mutation verbs ---------------- *)

let test_update_verbs () =
  let srv, eng = make () in
  Alcotest.(check (list string)) "epoch verb" [ "epoch 0"; "ok" ]
    (Server.handle srv "epoch");
  (* a mutation absorbed mid-session: epoch advances, answers track *)
  (match Server.handle srv "update add-edge 0 24" with
  | [ line; "ok" ] ->
      Alcotest.(check bool) ("update reply: " ^ line) true
        (String.length line >= 17
        && String.sub line 0 17 = "epoch 1 applied 1")
  | r -> Alcotest.failf "update reply: %s" (String.concat "|" r));
  Alcotest.(check (list string)) "mutated edge now a solution"
    [ "true"; "ok" ] (Server.handle srv "test 0,24");
  (* batch: several mutations, one reply, epoch counts each *)
  (match
     Server.handle srv "batch-update remove-edge 0 24; set-color 0 3 on"
   with
  | [ line; "ok" ] ->
      Alcotest.(check bool) ("batch reply: " ^ line) true
        (String.length line >= 17
        && String.sub line 0 17 = "epoch 3 applied 2")
  | r -> Alcotest.failf "batch reply: %s" (String.concat "|" r));
  Alcotest.(check (list string)) "reverted edge gone" [ "false"; "ok" ]
    (Server.handle srv "test 0,24");
  (* malformed mutations are user errors; the session survives *)
  check_err "bad mutation" "user" (Server.handle srv "update frobnicate 1 2");
  check_err "empty update" "user" (Server.handle srv "update");
  check_err "empty batch" "user" (Server.handle srv "batch-update ;;");
  Alcotest.(check int) "epoch unchanged by failures" 3 (Nd_engine.epoch eng);
  check_ok "still serving" (Server.handle srv "next 0,0")

let test_update_resets_cursor () =
  let srv, eng = make () in
  (* draw one page, mutate, then re-enumerate: the full solution set of
     the mutated graph must come out — no skipped/duplicated answers
     from a stale cursor *)
  check_ok "first page" (Server.handle srv "enumerate 5");
  check_ok "update" (Server.handle srv "update add-edge 0 24");
  let collected = ref [] in
  let complete = ref false in
  while not !complete do
    let reply = Server.handle srv "enumerate 50" in
    check_ok "page" reply;
    List.iter
      (fun l ->
        if String.length l > 4 && String.sub l 0 4 = "sol " then
          collected := String.sub l 4 (String.length l - 4) :: !collected
        else if
          String.length l >= 12
          && String.sub l 0 4 = "end "
          && String.sub l (String.length l - 8) 8 = "complete"
        then complete := true)
      reply
  done;
  let g' =
    Nd_graph.Cgraph.apply (graph ()) (Nd_graph.Cgraph.Add_edge (0, 24))
  in
  let expected =
    List.map
      (fun t ->
        String.concat "," (List.map string_of_int (Array.to_list t)))
      (Nd_engine.to_list (Nd_engine.prepare g' (Nd_engine.query eng)))
  in
  Alcotest.(check (list string)) "post-update enumeration complete" expected
    (List.rev !collected)

(* ---------------- overload safety ---------------- *)

(* Deterministic overload: one request pins the engine lock via the
   chaos-only `inject sleep`, a second fills the in-flight gate, and
   every further request must be shed immediately with err overloaded —
   the shed path never touches the engine lock, so the 6 shed calls
   return while the engine is still pinned. *)
let test_admission_shedding () =
  let config =
    {
      Server.default_config with
      Server.chaos = true;
      max_inflight = Some 2;
      retry_after_ms = 25;
    }
  in
  let srv, _ = make ~config () in
  let pinner =
    Thread.create (fun () -> Server.handle (Server.session srv) "inject sleep 600") ()
  in
  Unix.sleepf 0.1;
  let second =
    Thread.create (fun () -> Server.handle (Server.session srv) "test 0,1") ()
  in
  Unix.sleepf 0.1;
  (* 6 more clients while the gate is full: all shed, all fast *)
  let t0 = Unix.gettimeofday () in
  let shed_replies =
    List.init 6 (fun _ -> Server.handle (Server.session srv) "test 0,1")
  in
  let shed_elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "shedding is O(1), not engine-bound" true
    (shed_elapsed < 0.35);
  List.iter
    (fun reply ->
      match Client.status_of_reply reply with
      | Client.Err_reply ("overloaded", msg) ->
          Alcotest.(check int) "advertises the configured floor" 25
            (Client.retry_after_of_msg msg)
      | _ -> Alcotest.failf "expected err overloaded: %s" (String.concat "|" reply))
    shed_replies;
  Thread.join pinner;
  Thread.join second;
  let c = Server.counts srv in
  Alcotest.(check int) "shed count" 6 c.Server.overloaded;
  Alcotest.(check int) "admitted requests all served" 2 c.Server.ok;
  (* the gate drains: the next request is admitted again *)
  check_ok "gate released" (Server.handle srv "test 0,1")

let test_shutting_down_race () =
  let srv, _ = make () in
  check_ok "pre-stop request served" (Server.handle srv "test 0,1");
  Server.request_stop srv;
  (* a request racing the stop flag gets a structured refusal, not a
     silent drop *)
  (match Client.status_of_reply (Server.handle srv "test 0,1") with
  | Client.Err_reply ("shutting-down", _) -> ()
  | _ -> Alcotest.fail "expected err shutting-down");
  let c = Server.counts srv in
  Alcotest.(check int) "refusal counted" 1 c.Server.shutting_down;
  Alcotest.(check int) "served before stop" 1 c.Server.ok

let test_drain_backlog_refuses_parked_connections () =
  (* a bare listener nobody accepts from: connections park in the
     kernel backlog, exactly the population drain_backlog must flush *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nd_drain_%d.sock" (Unix.getpid ()))
  in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let parked =
    List.init 2 (fun _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd)
  in
  Alcotest.(check int) "both parked connections drained" 2
    (Server.drain_backlog sock);
  List.iter
    (fun fd ->
      let ic = Unix.in_channel_of_descr fd in
      let refusal = input_line ic in
      (match Client.status_of_reply [ refusal ] with
      | Client.Err_reply ("shutting-down", _) -> ()
      | _ -> Alcotest.failf "parked connection got: %s" refusal);
      Alcotest.(check string) "then bye" "bye" (input_line ic);
      Unix.close fd)
    parked;
  Alcotest.(check int) "backlog empty afterwards" 0 (Server.drain_backlog sock)

let test_idle_reaper () =
  let config =
    { Server.default_config with Server.idle_timeout_ms = Some 120 }
  in
  let srv = fst (make ~config ()) in
  with_socket_server ~srv @@ fun path _ ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let t0 = Unix.gettimeofday () in
  (* send nothing: the reaper must close this connection with bye *)
  let ic = Unix.in_channel_of_descr fd in
  Alcotest.(check string) "reaped with bye" "bye" (input_line ic);
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "reaped after the idle deadline (%.0fms)" (elapsed *. 1000.))
    true
    (elapsed >= 0.1 && elapsed < 2.0);
  (match input_line ic with
  | exception End_of_file -> ()
  | l -> Alcotest.failf "connection stayed open: %s" l);
  (* a fresh, active connection is unaffected *)
  with_socket_client path @@ fun t ->
  Alcotest.(check (list string)) "fresh connection still served"
    [ "true"; "ok" ] (t "test 0,1")

let test_max_conns_gate () =
  let config =
    {
      Server.default_config with
      Server.max_conns = Some 1;
      retry_after_ms = 40;
    }
  in
  let srv = fst (make ~config ()) in
  with_socket_server ~srv @@ fun path _ ->
  with_socket_client path @@ fun t ->
  (* the first connection is established and registered *)
  Alcotest.(check (list string)) "first connection served" [ "true"; "ok" ]
    (t "test 0,1");
  (* the second is refused at accept time with a structured reply *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  (match Client.status_of_reply [ input_line ic ] with
  | Client.Err_reply ("overloaded", msg) ->
      Alcotest.(check int) "refusal advertises the floor" 40
        (Client.retry_after_of_msg msg)
  | _ -> Alcotest.fail "second connection was not refused");
  Alcotest.(check string) "refusal ends with bye" "bye" (input_line ic);
  (* the registered connection keeps serving *)
  Alcotest.(check (list string)) "survivor unaffected" [ "true"; "ok" ]
    (t "test 0,1")

(* ---------------- retry policy extensions ---------------- *)

let shed_then_ok_transport calls =
  fun _req ->
    incr calls;
    if !calls <= 2 then
      [ "err overloaded rid=7 span=0 retry-after-ms=70 in-flight limit 2 \
         reached" ]
    else [ "true"; "ok" ]

let test_client_retries_overloaded_with_floor () =
  let calls = ref 0 in
  let sleeps = ref [] in
  let policy =
    {
      Client.retries = 3;
      backoff_ms = 10;
      multiplier = 2.0;
      jitter = Nd_util.Backoff.none;
      sleep_ms = (fun ms -> sleeps := ms :: !sleeps);
    }
  in
  let r = Client.call ~policy (shed_then_ok_transport calls) "test 0,1" in
  Alcotest.(check int) "third attempt lands" 3 r.Client.attempts;
  Alcotest.(check bool) "final ok" true (r.Client.status = Client.Ok_reply);
  (* the server's floor (70) dominates the small jittered caps (10, 20) *)
  Alcotest.(check (list int)) "delays floored at retry-after-ms" [ 70; 70 ]
    (List.rev !sleeps)

let test_client_retries_transport_errors () =
  let calls = ref 0 in
  let policy =
    {
      Client.retries = 3;
      backoff_ms = 1;
      multiplier = 2.0;
      jitter = Nd_util.Backoff.none;
      sleep_ms = ignore;
    }
  in
  (* EOF mid-reply twice (connection reset by a restarting worker),
     then a clean reply *)
  let transport _req =
    incr calls;
    if !calls <= 2 then raise End_of_file else [ "true"; "ok" ]
  in
  let r = Client.call ~policy transport "test 0,1" in
  Alcotest.(check int) "retried through transport failures" 3 r.Client.attempts;
  Alcotest.(check bool) "final ok" true (r.Client.status = Client.Ok_reply);
  (* an unterminated reply is a transport failure too *)
  calls := 0;
  let transport _req =
    incr calls;
    if !calls = 1 then [ "sol 0,0"; "sol 0," ] else [ "sol 0,0"; "end 1"; "ok" ]
  in
  let r = Client.call ~policy transport "enumerate 2" in
  Alcotest.(check int) "unterminated reply retried" 2 r.Client.attempts;
  Alcotest.(check bool) "recovered" true (r.Client.status = Client.Ok_reply)

let test_client_fails_fast_on_shutting_down () =
  let calls = ref 0 in
  let transport _req =
    incr calls;
    [ "err shutting-down rid=3 span=0 server is draining" ]
  in
  let r = Client.call (* default policy *) transport "test 0,1" in
  Alcotest.(check int) "no retry against a draining server" 1
    r.Client.attempts;
  Alcotest.(check int) "single transport call" 1 !calls;
  match r.Client.status with
  | Client.Err_reply ("shutting-down", _) -> ()
  | _ -> Alcotest.fail "status should be the refusal"

(* ---------------- bounded connect ---------------- *)

(* Client.connect against a path nobody listens on: bounded attempts,
   backoff-scheduled sleeps between them, and a structured Error — the
   raw material of the router's Transport_error rung. *)
let test_client_connect_bounded_retries () =
  let sleeps = ref [] in
  let clock = ref 0 in
  let policy =
    {
      Client.connect_retries = 3;
      connect_backoff_ms = 8;
      connect_deadline_ms = 1_000_000;
      connect_jitter = Nd_util.Backoff.none;
      connect_sleep_ms =
        (fun ms ->
          sleeps := ms :: !sleeps;
          clock := !clock + ms);
      connect_now_ms = (fun () -> !clock);
    }
  in
  (* nonexistent path: connect(2) fails with ENOENT immediately *)
  (match Client.connect ~policy "/nonexistent/fodb-test.sock" with
  | Ok fd ->
      Unix.close fd;
      Alcotest.fail "connected to a nonexistent path"
  | Error msg ->
      Alcotest.(check bool) "message names the path" true
        (contains msg "fodb-test.sock");
      Alcotest.(check int) "retries exhausted" 3 (List.length !sleeps);
      (* deterministic doubling under the no-jitter policy: 8, 16, 32 *)
      Alcotest.(check (list int)) "backoff schedule" [ 8; 16; 32 ]
        (List.rev !sleeps));
  (* bound but never listening: connect(2) gets ECONNREFUSED, same
     bounded ladder *)
  let path = Filename.temp_file "nd_connect" ".sock" in
  Sys.remove path;
  let srv_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv_fd (Unix.ADDR_UNIX path);
  Fun.protect
    ~finally:(fun () ->
      Unix.close srv_fd;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      sleeps := [];
      match Client.connect ~policy path with
      | Ok fd ->
          Unix.close fd;
          Alcotest.fail "connected to a non-listening socket"
      | Error _ ->
          Alcotest.(check int) "refused connects also retry" 3
            (List.length !sleeps))

let test_client_connect_deadline () =
  (* the wall-clock deadline cuts the ladder short even when plenty of
     retry attempts remain *)
  let clock = ref 0 in
  let sleeps = ref 0 in
  let policy =
    {
      Client.connect_retries = 1_000;
      connect_backoff_ms = 50;
      connect_deadline_ms = 120;
      connect_jitter = Nd_util.Backoff.none;
      connect_sleep_ms =
        (fun ms ->
          incr sleeps;
          clock := !clock + ms);
      connect_now_ms = (fun () -> !clock);
    }
  in
  match Client.connect ~policy "/nonexistent/fodb-test.sock" with
  | Ok fd ->
      Unix.close fd;
      Alcotest.fail "connected to a nonexistent path"
  | Error msg ->
      (* 50 + 100 past the 120ms deadline: exactly two sleeps *)
      Alcotest.(check int) "deadline bounds the ladder" 2 !sleeps;
      Alcotest.(check bool) "error reports attempts" true
        (contains msg "attempts")

let test_client_connect_succeeds () =
  let path = Filename.temp_file "nd_connect" ".sock" in
  Sys.remove path;
  let srv_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv_fd (Unix.ADDR_UNIX path);
  Unix.listen srv_fd 1;
  Fun.protect
    ~finally:(fun () ->
      Unix.close srv_fd;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Client.connect path with
      | Ok fd -> Unix.close fd
      | Error msg -> Alcotest.failf "connect to live listener failed: %s" msg)

let test_config_validation () =
  let eng = snd (make ()) in
  let bad cfg =
    match Server.create ~config:cfg eng with
    | _ -> Alcotest.fail "invalid config accepted"
    | exception Invalid_argument _ -> ()
  in
  bad { Server.default_config with Server.max_inflight = Some 0 };
  bad { Server.default_config with Server.max_conns = Some (-1) };
  bad { Server.default_config with Server.io_timeout_ms = Some 0 };
  bad { Server.default_config with Server.idle_timeout_ms = Some 0 };
  bad { Server.default_config with Server.max_line_bytes = 0 };
  bad { Server.default_config with Server.retry_after_ms = -1 }

let suite =
  [
    Alcotest.test_case "basic protocol" `Quick test_basic_protocol;
    Alcotest.test_case "update + batch-update verbs" `Quick test_update_verbs;
    Alcotest.test_case "update resets the cursor" `Quick
      test_update_resets_cursor;
    Alcotest.test_case "enumerate cursor pages exactly" `Quick
      test_enumerate_cursor;
    Alcotest.test_case "malformed requests survive" `Quick
      test_malformed_requests_survive;
    Alcotest.test_case "budget exhaustion survives" `Quick
      test_budget_exhaustion_survives;
    Alcotest.test_case "injected internal errors survive" `Quick
      test_injected_internal_error_survives;
    Alcotest.test_case "health + quit" `Quick test_health_and_quit;
    Alcotest.test_case "err replies carry rid and span ids" `Quick
      test_err_reply_carries_rid_and_span;
    Alcotest.test_case "event log emits JSONL" `Quick test_event_log_is_jsonl;
    Alcotest.test_case "metrics verb speaks Prometheus" `Quick
      test_metrics_verb_is_prometheus;
    Alcotest.test_case "serve loop over pipes" `Quick
      test_serve_loop_channels;
    Alcotest.test_case "graceful stop before any request" `Quick
      test_graceful_stop_drains;
    Alcotest.test_case "graceful stop drains in-flight request" `Quick
      test_stop_after_inflight_request;
    Alcotest.test_case "serve over a unix socket" `Quick test_serve_socket;
    Alcotest.test_case "session cursors are per-connection" `Quick
      test_session_cursor_isolated;
    Alcotest.test_case "backlog validation" `Quick test_backlog_validation;
    Alcotest.test_case "4 concurrent socket clients" `Quick
      test_concurrent_socket_clients;
    Alcotest.test_case "client retries transient errors only" `Quick
      test_client_retries_transient_only;
    Alcotest.test_case "client bounded retries + backoff" `Quick
      test_client_gives_up_after_bounded_retries;
    Alcotest.test_case "client end-to-end in process" `Quick
      test_client_end_to_end_in_process;
    Alcotest.test_case "status_of_reply" `Quick test_status_of_reply;
    Alcotest.test_case "admission gate sheds with err overloaded" `Quick
      test_admission_shedding;
    Alcotest.test_case "requests racing stop get err shutting-down" `Quick
      test_shutting_down_race;
    Alcotest.test_case "drain_backlog refuses parked connections" `Quick
      test_drain_backlog_refuses_parked_connections;
    Alcotest.test_case "idle reaper closes quiet connections" `Quick
      test_idle_reaper;
    Alcotest.test_case "max-conns gate refuses at accept" `Quick
      test_max_conns_gate;
    Alcotest.test_case "client honors retry-after-ms on overloaded" `Quick
      test_client_retries_overloaded_with_floor;
    Alcotest.test_case "client retries transport errors" `Quick
      test_client_retries_transport_errors;
    Alcotest.test_case "client fails fast on shutting-down" `Quick
      test_client_fails_fast_on_shutting_down;
    Alcotest.test_case "connect: bounded retries vs never-listening" `Quick
      test_client_connect_bounded_retries;
    Alcotest.test_case "connect: deadline cuts the ladder" `Quick
      test_client_connect_deadline;
    Alcotest.test_case "connect: live listener" `Quick
      test_client_connect_succeeds;
    Alcotest.test_case "overload config validation" `Quick
      test_config_validation;
  ]
