(* Integration: relational database → A'(D) encoding → Lemma 2.2
   translation → enumeration via the Theorem 2.3 machinery, compared to
   direct evaluation over the database. *)

open Nd_graph
module T = Nd_eval.Translate

(* A small bibliography database: authors, papers, authorship, citation. *)
let biblio =
  let authors = [ 0; 1; 2; 3 ] in
  let papers = [ 4; 5; 6; 7; 8 ] in
  ignore (authors, papers);
  Rel.create_db
    [ ("Author", 1); ("Paper", 1); ("Wrote", 2); ("Cites", 2) ]
    ~domain:9
    [
      ("Author", [ [| 0 |]; [| 1 |]; [| 2 |]; [| 3 |] ]);
      ("Paper", [ [| 4 |]; [| 5 |]; [| 6 |]; [| 7 |]; [| 8 |] ]);
      ( "Wrote",
        [ [| 0; 4 |]; [| 0; 5 |]; [| 1; 5 |]; [| 2; 6 |]; [| 3; 7 |]; [| 3; 8 |] ] );
      ("Cites", [ [| 5; 4 |]; [| 6; 4 |]; [| 7; 5 |]; [| 8; 6 |]; [| 8; 7 |] ]);
    ]

let rel_queries =
  [
    ( "co-authors",
      T.And
        [
          T.Atom ("Author", [ "a" ]);
          T.Atom ("Author", [ "b" ]);
          T.Not (T.Eq ("a", "b"));
          T.Exists
            ( "p",
              T.And [ T.Atom ("Wrote", [ "a"; "p" ]); T.Atom ("Wrote", [ "b"; "p" ]) ]
            );
        ] );
    ( "author cites own paper",
      T.And
        [
          T.Atom ("Wrote", [ "a"; "p" ]);
          T.Exists
            ( "q",
              T.And [ T.Atom ("Wrote", [ "a"; "q" ]); T.Atom ("Cites", [ "q"; "p" ]) ]
            );
        ] );
    ( "papers citing each other’s author base",
      T.And
        [ T.Atom ("Cites", [ "p"; "q" ]); T.Not (T.Atom ("Cites", [ "q"; "p" ])) ]
    );
  ]

let test_rel_pipeline () =
  let e = Rel.encode biblio in
  let schema = Rel.schema biblio in
  List.iter
    (fun (name, rq) ->
      let expected = T.eval_all_db biblio rq in
      let psi = T.translate schema rq in
      let eng = Nd_engine.prepare e.Rel.graph psi in
      let got = Nd_engine.to_list eng in
      (* answers over A'(D) use vertex ids = element ids *)
      if got <> expected then
        Alcotest.failf "%s: db gives %d tuples, pipeline %d (or order)" name
          (List.length expected) (List.length got))
    rel_queries

let test_rel_pipeline_random () =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let domain = 7 in
      let db =
        Rel.create_db
          [ ("R", 2) ]
          ~domain
          [
            ( "R",
              List.init 9 (fun _ ->
                  [| Random.State.int rng domain; Random.State.int rng domain |])
            );
          ]
      in
      let e = Rel.encode db in
      let rq =
        T.Exists
          ("z", T.And [ T.Atom ("R", [ "x"; "z" ]); T.Atom ("R", [ "z"; "y" ]) ])
      in
      let expected = T.eval_all_db db rq in
      let psi = T.translate (Rel.schema db) rq in
      let eng = Nd_engine.prepare e.Rel.graph psi in
      let got = Nd_engine.to_list eng in
      if got <> expected then Alcotest.failf "seed %d: composition query wrong" seed)
    [ 1; 2; 3; 4; 5 ]

(* The dist-index, cover, kernel, skip and local machinery all compose
   inside Next; this test stresses a deeper stack: ternary query over a
   moderately large sparse graph, verified against naive evaluation. *)
let test_ternary_integration () =
  let g =
    Gen.randomly_color ~seed:21 ~colors:2 (Gen.planar_grid ~seed:3 6 6)
  in
  let phi =
    Nd_logic.Parse.formula "E(x,y) & dist(y,z) <= 2 & dist(x,z) > 2 & C0(z)"
  in
  let ctx = Nd_eval.Naive.ctx g in
  let expected = Nd_eval.Naive.eval_all ctx ~vars:(Nd_logic.Fo.free_vars phi) phi in
  let eng = Nd_engine.prepare g phi in
  let got = Nd_engine.to_list eng in
  Alcotest.(check int) "count" (List.length expected) (List.length got);
  Alcotest.(check bool) "exact" true (got = expected)

let suite =
  [
    Alcotest.test_case "bibliography db end-to-end" `Quick test_rel_pipeline;
    Alcotest.test_case "random relational dbs" `Quick test_rel_pipeline_random;
    Alcotest.test_case "ternary integration" `Slow test_ternary_integration;
  ]
