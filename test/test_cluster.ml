(* The cluster tier: ownership partition, the duplicate-free k-way
   merge, and the epoch-fencing router — differential against the
   single-node engine, under failover, lagging replicas, catch-up and
   total shard loss.  Everything runs in-process over local endpoints:
   deterministic, no sockets, no sleeps (jitter and sleep_ms are
   injected as identities). *)

open Nd_graph
module Server = Nd_server
module Tuple = Nd_util.Tuple
module Ownership = Nd_cluster.Ownership
module Merge = Nd_cluster.Merge
module Router = Nd_cluster.Router

let graph () = Gen.randomly_color ~seed:5 ~colors:3 (Gen.grid 5 5)
let query = "dist(x,y) <= 2"
let formula () = Nd_logic.Parse.formula query

let expected_solutions () =
  Nd_engine.to_list (Nd_engine.prepare (graph ()) (formula ()))

(* One shard worker: an ordinary server whose [owner] config restricts
   it to the shard's slice of the solution space.  Each replica gets
   its own engine (its own mutable state), all over the same boot
   graph. *)
let shard_server own ~shard =
  let eng = Nd_engine.prepare (graph ()) (formula ()) in
  let config =
    {
      Server.default_config with
      Server.owner = Some (Ownership.owner own ~shard);
    }
  in
  (Server.create ~config eng, eng)

(* deterministic router config: no timer, no real sleeps, no jitter *)
let rconfig ?(fence = true) ?(retries = 1) ?event_log () =
  {
    Router.fence;
    probe_interval_ms = 0;
    retries;
    backoff_ms = 1;
    jitter = Nd_util.Backoff.none;
    sleep_ms = ignore;
    retry_after_ms = 25;
    max_enumerate = 512;
    event_log;
  }

let fleet ?config ~shards ~replicas () =
  let own = Ownership.compute (graph ()) ~shards in
  let servers =
    Array.init shards (fun s ->
        Array.init replicas (fun _ -> shard_server own ~shard:s))
  in
  let eps =
    List.concat_map
      (fun s ->
        List.init replicas (fun r ->
            Router.local_endpoint ~shard:s
              ~label:(Printf.sprintf "s%d/r%d" s r)
              (fst servers.(s).(r))))
      (List.init shards Fun.id)
  in
  let rt = Router.create ?config ~ownership:own ~arity:2 eps in
  (rt, servers, own)

let starts p l = String.starts_with ~prefix:p l

let infix needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let tuple_of_payload s =
  Array.of_list (List.map int_of_string (String.split_on_char ',' s))

let drive ?(page = 7) rt =
  let sols = ref [] and complete = ref false and guard = ref 0 in
  while not !complete do
    incr guard;
    if !guard > 10_000 then Alcotest.fail "enumeration did not terminate";
    let reply = Router.handle rt (Printf.sprintf "enumerate %d" page) in
    List.iter
      (fun l ->
        if starts "sol " l then
          sols := tuple_of_payload (String.sub l 4 (String.length l - 4)) :: !sols
        else if starts "err " l then Alcotest.failf "enumerate: %s" l
        else if starts "end " l then
          complete :=
            String.length l > 9
            && String.sub l (String.length l - 8) 8 = "complete")
      reply
  done;
  List.rev !sols

let check_sols what got =
  Alcotest.(check bool) what true (got = expected_solutions ())

let terminator reply =
  match List.rev reply with
  | last :: _ -> last
  | [] -> Alcotest.fail "empty reply"

let check_ok what reply = Alcotest.(check string) what "ok" (terminator reply)

(* ---------------- ownership ---------------- *)

let prop_ownership_partition =
  QCheck.Test.make
    ~name:"ownership: total, disjoint, first-coordinate partition" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed; 0x0a11 |] in
      let w = 2 + Random.State.int st 4 and h = 2 + Random.State.int st 4 in
      let g = Gen.grid w h in
      let n = Cgraph.n g in
      let shards = 1 + Random.State.int st 4 in
      let own = Ownership.compute g ~shards in
      if Ownership.shards own <> shards then
        QCheck.Test.fail_reportf "shards: %d" (Ownership.shards own);
      if Ownership.n own <> n then QCheck.Test.fail_reportf "n mismatch";
      if Ownership.shard_of_tuple own [||] <> 0 then
        QCheck.Test.fail_reportf "empty tuple not shard 0's";
      for _ = 1 to 40 do
        let arity = 1 + Random.State.int st 2 in
        let t = Array.init arity (fun _ -> Random.State.int st n) in
        let sh = Ownership.shard_of_tuple own t in
        if sh < 0 || sh >= shards then
          QCheck.Test.fail_reportf "shard %d out of range" sh;
        if Ownership.shard_of_vertex own t.(0) <> sh then
          QCheck.Test.fail_reportf "tuple not owned by first coordinate";
        let owners =
          List.filter
            (fun s -> Ownership.owner own ~shard:s t)
            (List.init shards Fun.id)
        in
        if owners <> [ sh ] then
          QCheck.Test.fail_reportf "tuple has %d owners"
            (List.length owners)
      done;
      true)

let test_ownership_validation () =
  let g = Gen.grid 3 3 in
  (match Ownership.compute g ~shards:0 with
  | _ -> Alcotest.fail "shards=0 accepted"
  | exception Invalid_argument _ -> ());
  match Ownership.compute ~r:0 g ~shards:2 with
  | _ -> Alcotest.fail "r=0 accepted"
  | exception Invalid_argument _ -> ()

(* ---------------- the k-way merge ---------------- *)

(* Satellite: random partitions WITH cross-stream overlap, random page
   sizes, pagination truncating the merge mid-way.  The lower bound is
   the only state carried between pages — exactly what survives a
   failover — so page-by-page equality with the sorted dedup union is
   the no-gaps / no-duplicates theorem for resumed merges. *)
let prop_merge_no_gaps_no_dups =
  QCheck.Test.make
    ~name:"k-way merge: overlapping streams, truncation mid-way" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed; 0x3e16e |] in
      let n = 1 + Random.State.int st 9 in
      let arity = 1 + Random.State.int st 2 in
      let shards = 1 + Random.State.int st 3 in
      let k = 1 + Random.State.int st 6 in
      let m = Random.State.int st 40 in
      let universe =
        List.init m (fun _ -> Array.init arity (fun _ -> Random.State.int st n))
      in
      let sorted = List.sort_uniq Tuple.compare universe in
      let streams = Array.make shards [] in
      List.iter
        (fun t ->
          let primary = Random.State.int st shards in
          streams.(primary) <- t :: streams.(primary);
          (* overlap: some tuples live on several streams; the merge
             must still emit them exactly once *)
          if shards > 1 && Random.State.int st 4 = 0 then begin
            let other = Random.State.int st shards in
            if other <> primary then streams.(other) <- t :: streams.(other)
          end)
        sorted;
      Array.iteri
        (fun i l -> streams.(i) <- List.sort Tuple.compare l)
        streams;
      let pull sh lb =
        List.find_opt (fun t -> Tuple.compare t lb >= 0) streams.(sh)
      in
      let rec pages start acc rounds =
        if rounds > 500 then QCheck.Test.fail_reportf "merge did not finish";
        match start with
        | None -> acc
        | Some _ ->
            let page, next = Merge.merge_pull ~n ~k ~start ~shards ~pull in
            if List.length page > k then
              QCheck.Test.fail_reportf "page of %d exceeds k=%d"
                (List.length page) k;
            pages next (acc @ page) (rounds + 1)
      in
      let merged = pages (Some (Tuple.min arity)) [] 0 in
      if merged <> sorted then
        QCheck.Test.fail_reportf "merged %d tuples, expected %d"
          (List.length merged) (List.length sorted);
      true)

(* ---------------- router differential ---------------- *)

let test_router_differential () =
  List.iter
    (fun shards ->
      let rt, _, _ = fleet ~config:(rconfig ()) ~shards ~replicas:1 () in
      check_sols
        (Printf.sprintf "%d-shard enumeration = single-node" shards)
        (drive rt))
    [ 1; 2; 3; 5 ]

let test_router_next_and_test () =
  let rt, _, _ = fleet ~config:(rconfig ()) ~shards:3 ~replicas:1 () in
  (* the next-verb walk reconstitutes the same global stream *)
  let n = Cgraph.n (graph ()) in
  let collected = ref [] in
  let rec walk lb =
    match Router.handle rt ("next " ^ fmt lb) with
    | [ one; "ok" ] when starts "sol " one ->
        let sol = tuple_of_payload (String.sub one 4 (String.length one - 4)) in
        collected := sol :: !collected;
        (match Tuple.succ ~n sol with Some lb' -> walk lb' | None -> ())
    | [ "none"; "ok" ] -> ()
    | r -> Alcotest.failf "next reply: %s" (String.concat "|" r)
  and fmt t =
    String.concat "," (List.map string_of_int (Array.to_list t))
  in
  walk (Tuple.min 2);
  check_sols "next-walk = single-node" (List.rev !collected);
  (* test answers match membership *)
  Alcotest.(check (list string)) "test true" [ "true"; "ok" ]
    (Router.handle rt "test 0,1");
  Alcotest.(check (list string)) "test false" [ "false"; "ok" ]
    (Router.handle rt "test 0,24")

let test_router_health_stats_and_quit () =
  let rt, _, _ = fleet ~config:(rconfig ()) ~shards:2 ~replicas:2 () in
  ignore (Router.handle rt "enumerate 5");
  (match Router.handle rt "health" with
  | [ line; "ok" ] ->
      List.iter
        (fun tok ->
          Alcotest.(check bool) tok true
            (infix tok line))
        [ "health ok"; "shards=2"; "replicas=4"; "live="; "epoch=" ]
  | r -> Alcotest.failf "health reply: %s" (String.concat "|" r));
  (match Router.handle rt "stats" with
  | [ json; "ok" ] ->
      Alcotest.(check bool) "stats is the router schema" true
        (infix "nd-router-stats/1" json)
  | r -> Alcotest.failf "stats reply: %s" (String.concat "|" r));
  let s = Router.stats rt in
  Alcotest.(check int) "all replicas live" 4 s.Router.live;
  Alcotest.(check bool) "not quitting" false (Router.quitting rt);
  Alcotest.(check (list string)) "quit" [ "bye" ] (Router.handle rt "quit");
  Alcotest.(check bool) "quitting" true (Router.quitting rt)

let test_router_session_isolation () =
  let rt, _, _ = fleet ~config:(rconfig ()) ~shards:2 ~replicas:1 () in
  let s1 = Router.session rt and s2 = Router.session rt in
  let page s = Router.handle s "enumerate 3" in
  let p1 = page s1 in
  let p1' = page s2 in
  Alcotest.(check (list string)) "fresh cursor per session" p1 p1';
  let p2 = page s1 in
  Alcotest.(check bool) "s1 advanced independently" true (p1 <> p2)

let test_router_unknown_verb_is_user_error () =
  let rt, _, _ = fleet ~config:(rconfig ()) ~shards:2 ~replicas:1 () in
  match Router.handle rt "frobnicate" with
  | [ line ] ->
      Alcotest.(check bool) "err user" true (starts "err user" line);
      check_ok "still alive" (Router.handle rt "enumerate 2")
  | r -> Alcotest.failf "unknown verb reply: %s" (String.concat "|" r)

let test_create_validation () =
  let own = Ownership.compute (graph ()) ~shards:2 in
  let srv, _ = shard_server own ~shard:0 in
  let ep = Router.local_endpoint ~shard:0 ~label:"only" srv in
  (* shard 1 has no endpoint *)
  (match Router.create ~ownership:own ~arity:2 [ ep ] with
  | _ -> Alcotest.fail "gap in shard coverage accepted"
  | exception Invalid_argument _ -> ());
  match
    Router.create ~ownership:own ~arity:2
      [ ep; Router.local_endpoint ~shard:7 ~label:"oob" srv ]
  with
  | _ -> Alcotest.fail "out-of-range shard accepted"
  | exception Invalid_argument _ -> ()

(* ---------------- failover ---------------- *)

(* Replica s0/r0 dies mid-stream (transport EOF on every call after the
   first few); the router must fail over to s0/r1 and the merged stream
   must come out whole — the pull-driven merge re-asks the sibling with
   the same lower bound, so the page boundary cannot leak gaps or
   duplicates. *)
let test_failover_mid_enumeration () =
  let shards = 2 in
  let own = Ownership.compute (graph ()) ~shards in
  let a0, _ = shard_server own ~shard:0 in
  let a1, _ = shard_server own ~shard:0 in
  let b0, _ = shard_server own ~shard:1 in
  let calls = ref 0 in
  let dying =
    Router.endpoint ~shard:0 ~label:"s0/dying" (fun () ->
        let session = Server.session a0 in
        Ok
          {
            Router.transport =
              (fun line ->
                incr calls;
                if !calls > 5 then raise End_of_file
                else Server.handle session line);
            read_reply = (fun _ -> None);
            close = ignore;
          })
  in
  let rt =
    Router.create ~config:(rconfig ()) ~ownership:own ~arity:2
      [
        dying;
        Router.local_endpoint ~shard:0 ~label:"s0/backup" a1;
        Router.local_endpoint ~shard:1 ~label:"s1" b0;
      ]
  in
  check_sols "failover mid-stream keeps the stream whole" (drive ~page:3 rt);
  let s = Router.stats rt in
  Alcotest.(check bool) "failover counted" true (s.Router.failovers >= 1);
  Alcotest.(check bool) "no unavailable" true (s.Router.unavailable = 0)

(* ---------------- replication, fencing, catch-up ---------------- *)

let mutation = "add-edge 0 7"

let mutated_solutions () =
  let g = Cgraph.apply (graph ()) (Cgraph.mutation_of_string mutation) in
  Nd_engine.to_list (Nd_engine.prepare g (formula ()))

(* s0/r1 misses the update fan-out (its transport drops [update] lines);
   the router fences it, and the next probe round replays the missing
   journal suffix via batch-update and readmits it at the fleet epoch. *)
let test_update_fence_and_catchup () =
  let shards = 2 in
  let own = Ownership.compute (graph ()) ~shards in
  let a0, _ = shard_server own ~shard:0 in
  let a1, a1_eng = shard_server own ~shard:0 in
  let b0, _ = shard_server own ~shard:1 in
  let events = ref [] in
  let dropping =
    Router.endpoint ~shard:0 ~label:"s0/lagging" (fun () ->
        let session = Server.session a1 in
        Ok
          {
            Router.transport =
              (fun line ->
                if starts "update" line then raise End_of_file
                else Server.handle session line);
            read_reply = (fun _ -> None);
            close = ignore;
          })
  in
  let config = rconfig ~event_log:(fun l -> events := l :: !events) () in
  let rt =
    Router.create ~config ~ownership:own ~arity:2
      [
        Router.local_endpoint ~shard:0 ~label:"s0/leader" a0;
        dropping;
        Router.local_endpoint ~shard:1 ~label:"s1" b0;
      ]
  in
  check_ok "update accepted" (Router.handle rt ("update " ^ mutation));
  let s = Router.stats rt in
  Alcotest.(check int) "fleet epoch advanced" 1 s.Router.fleet_epoch;
  Alcotest.(check int) "lagging replica fenced" 1 s.Router.fenced;
  Alcotest.(check int) "replica engine still at epoch 0" 0
    (Nd_engine.epoch a1_eng);
  (* answers reflect the mutation even while a replica lags *)
  Alcotest.(check bool) "post-update enumeration correct" true
    (drive rt = mutated_solutions ());
  (* the probe round catches the laggard up and readmits it *)
  Router.probe rt;
  let s = Router.stats rt in
  Alcotest.(check bool) "catch-up happened" true (s.Router.catchups >= 1);
  Alcotest.(check int) "everyone back in rotation" 0 s.Router.fenced;
  Alcotest.(check int) "laggard replayed the journal" 1
    (Nd_engine.epoch a1_eng);
  (* lifecycle rows were written *)
  let have cmd =
    List.exists
      (fun l -> infix (Printf.sprintf "%S" cmd) l)
      !events
  in
  Alcotest.(check bool) "(fence) row" true (have "(fence)");
  Alcotest.(check bool) "(catchup) row" true (have "(catchup)")

(* A replica mutated behind the router's back is AHEAD of the fleet:
   no safe rollback exists, so it is fenced permanently and its state
   never contaminates a merge. *)
let test_ahead_replica_permanently_fenced () =
  let shards = 1 in
  let own = Ownership.compute (graph ()) ~shards in
  let a0, _ = shard_server own ~shard:0 in
  let a1, a1_eng = shard_server own ~shard:0 in
  let rt =
    Router.create ~config:(rconfig ()) ~ownership:own ~arity:2
      [
        Router.local_endpoint ~shard:0 ~label:"honest" a0;
        Router.local_endpoint ~shard:0 ~label:"rogue" a1;
      ]
  in
  (* establish the fleet epoch at 0 *)
  check_ok "first contact" (Router.handle rt "enumerate 3");
  (* the rogue mutates out-of-band *)
  Nd_engine.update a1_eng (Cgraph.mutation_of_string mutation);
  Router.probe rt;
  let s = Router.stats rt in
  Alcotest.(check int) "rogue fenced" 1 s.Router.fenced;
  (match
     List.find_opt
       (fun (_, label, _) -> label = "rogue")
       (Router.replica_states rt)
   with
  | Some (_, _, state) ->
      Alcotest.(check bool) "state names the ahead fence" true
        (infix "ahead" state)
  | None -> Alcotest.fail "rogue replica missing from states");
  (* the honest replica answers; answers are the UNMUTATED ones *)
  Router.handle rt "reset" |> check_ok "reset";
  check_sols "merge never saw the rogue epoch" (drive rt)

(* All replicas of a shard gone: the shard group is unavailable and the
   reply says so loudly — structured fields, no partial answer. *)
let test_unavailable_when_group_dark () =
  let shards = 2 in
  let own = Ownership.compute (graph ()) ~shards in
  let a0, _ = shard_server own ~shard:0 in
  let b0, _ = shard_server own ~shard:1 in
  let dead = ref false in
  let events = ref [] in
  let mortal =
    Router.endpoint ~shard:1 ~label:"s1/mortal" (fun () ->
        if !dead then Error "connect refused (down for the test)"
        else
          let session = Server.session b0 in
          Ok
            {
              Router.transport =
                (fun line ->
                  if !dead then raise End_of_file
                  else Server.handle session line);
              read_reply = (fun _ -> None);
              close = ignore;
            })
  in
  let config =
    rconfig ~retries:0 ~event_log:(fun l -> events := l :: !events) ()
  in
  let rt =
    Router.create ~config ~ownership:own ~arity:2
      [ Router.local_endpoint ~shard:0 ~label:"s0" a0; mortal ]
  in
  check_ok "healthy first page" (Router.handle rt "enumerate 3");
  dead := true;
  (match Router.handle rt "enumerate 512" with
  | [ line ] ->
      Alcotest.(check bool) "err unavailable" true
        (starts "err unavailable" line);
      List.iter
        (fun tok ->
          Alcotest.(check bool) tok true
            (infix tok line))
        [ "shard=1"; "retry-after-ms=25"; "rid=" ]
  | r -> Alcotest.failf "dark group reply: %s" (String.concat "|" r));
  let s = Router.stats rt in
  Alcotest.(check bool) "unavailable counted" true (s.Router.unavailable >= 1);
  (* the event row carries the shard attribute and the status *)
  Alcotest.(check bool) "unavailable event row" true
    (List.exists
       (fun l ->
         infix "\"unavailable\"" l
         && infix "\"shard\":1" l)
       !events);
  (* the group coming back revives the router with no restart *)
  dead := false;
  Router.handle rt "reset" |> check_ok "reset";
  check_sols "recovered after the outage" (drive rt)

(* A lagging replica whose catch-up channel is also broken must stay
   out of rotation: the router answers [err unavailable] rather than
   serving the stale epoch.  Mixed-epoch merges are impossible, not
   just discouraged. *)
let test_stale_replica_never_served () =
  let shards = 1 in
  let own = Ownership.compute (graph ()) ~shards in
  (* a leader that can be killed on demand + a replica that misses every
     update AND every catch-up replay *)
  let mk_pair () =
    let a0, _ = shard_server own ~shard:0 in
    let a1, _ = shard_server own ~shard:0 in
    let a0_dead = ref false in
    let flaky =
      Router.endpoint ~shard:0 ~label:"leader" (fun () ->
          let session = Server.session a0 in
          Ok
            {
              Router.transport =
                (fun line ->
                  if !a0_dead then raise End_of_file
                  else Server.handle session line);
              read_reply = (fun _ -> None);
              close = ignore;
            })
    in
    let stale =
      Router.endpoint ~shard:0 ~label:"stale" (fun () ->
          let session = Server.session a1 in
          Ok
            {
              Router.transport =
                (fun line ->
                  if starts "update" line || starts "batch-update" line then
                    raise End_of_file
                  else Server.handle session line);
              read_reply = (fun _ -> None);
              close = ignore;
            })
    in
    (flaky, stale, a0_dead)
  in
  let flaky, stale, a0_dead = mk_pair () in
  let rt =
    Router.create ~config:(rconfig ~retries:0 ()) ~ownership:own ~arity:2
      [ flaky; stale ]
  in
  check_ok "update through the leader" (Router.handle rt ("update " ^ mutation));
  a0_dead := true;
  (match Router.handle rt "enumerate 512" with
  | [ line ] ->
      Alcotest.(check bool) "unavailable, not stale data" true
        (starts "err unavailable" line)
  | r -> Alcotest.failf "stale-group reply: %s" (String.concat "|" r));
  (* with fencing disabled the stale replica WOULD serve — proving the
     fence is what stood between the client and a mixed-epoch answer *)
  let flaky2, stale2, a0_dead2 = mk_pair () in
  let rt2 =
    Router.create
      ~config:(rconfig ~fence:false ~retries:0 ())
      ~ownership:own ~arity:2 [ flaky2; stale2 ]
  in
  check_ok "unfenced update" (Router.handle rt2 ("update " ^ mutation));
  a0_dead2 := true;
  let got = drive rt2 in
  Alcotest.(check bool) "no-fence mode serves the stale epoch" true
    (got = expected_solutions ())

(* Event rows for ordinary requests mirror the server's shape. *)
let test_event_rows_shape () =
  let events = ref [] in
  let rt, _, _ =
    fleet
      ~config:(rconfig ~event_log:(fun l -> events := l :: !events) ())
      ~shards:2 ~replicas:1 ()
  in
  ignore (Router.handle rt "enumerate 3");
  ignore (Router.handle rt "frobnicate");
  ignore (Router.handle rt "quit");
  let rows = List.rev !events in
  Alcotest.(check int) "one row per request" 3 (List.length rows);
  List.iteri
    (fun i l ->
      match Nd_trace.Json.parse l with
      | Error e -> Alcotest.failf "row %d not JSON: %s" i e
      | Ok j ->
          List.iter
            (fun name ->
              if Nd_trace.Json.member name j = None then
                Alcotest.failf "row %d lacks %s" i name)
            [ "ts_us"; "rid"; "span"; "cmd"; "status"; "latency_us"; "lines" ])
    rows;
  let statuses =
    List.filter_map
      (fun l ->
        match Nd_trace.Json.parse l with
        | Ok j -> (
            match Nd_trace.Json.member "status" j with
            | Some (Nd_trace.Json.Str s) -> Some s
            | _ -> None)
        | Error _ -> None)
      rows
  in
  Alcotest.(check (list string)) "statuses" [ "ok"; "user"; "bye" ] statuses

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ownership_partition;
    Alcotest.test_case "ownership validation" `Quick test_ownership_validation;
    QCheck_alcotest.to_alcotest prop_merge_no_gaps_no_dups;
    Alcotest.test_case "router differential vs single-node" `Quick
      test_router_differential;
    Alcotest.test_case "router next + test verbs" `Quick
      test_router_next_and_test;
    Alcotest.test_case "router health, stats, quit" `Quick
      test_router_health_stats_and_quit;
    Alcotest.test_case "router sessions isolate cursors" `Quick
      test_router_session_isolation;
    Alcotest.test_case "unknown verb is a user error" `Quick
      test_router_unknown_verb_is_user_error;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "failover mid-enumeration" `Quick
      test_failover_mid_enumeration;
    Alcotest.test_case "update replication, fence + catch-up" `Quick
      test_update_fence_and_catchup;
    Alcotest.test_case "ahead replica permanently fenced" `Quick
      test_ahead_replica_permanently_fenced;
    Alcotest.test_case "dark shard group: err unavailable" `Quick
      test_unavailable_when_group_dark;
    Alcotest.test_case "stale replica never served" `Quick
      test_stale_replica_never_served;
    Alcotest.test_case "event rows shape" `Quick test_event_rows_shape;
  ]
