(* The parallel-prepare determinism gate (DESIGN S14): for every job
   count the prepared handle must give the same answers as the naive
   evaluator AND be indistinguishable from the sequential build —
   identical enumeration output, identical cost-model ops counters
   (the Metrics shard merge is exact, not approximate), and an
   identical persistence payload (marshalled bytes).  Also the
   incremental-update differential: a jobs=4 handle absorbing
   mutations stays equal, answer- and ops-wise, to a jobs=1 one. *)

open Nd_graph
open Nd_logic

let zoo =
  [
    ("grid:6x6", "dist(x,y) <= 2");
    ("tree:40", "E(x,y) & C0(y)");
    ("bdeg:48:4", "C0(x) & (exists z. E(x,z) & C1(z))");
    ("gnp:40:0.06", "E(x,y) & dist(y,z) <= 1 & C0(z)");
  ]

let graph spec = Gen.randomly_color ~seed:9 ~colors:2 (Gen.of_spec ~seed:5 spec)

(* Prepare with metrics from a clean slate; return the handle plus the
   deterministic parts of its stats record (ops total and the sorted
   ~ops counter list; wall-clock phases excluded by construction). *)
let prepared ~jobs g phi =
  Nd_engine.reset_metrics ();
  let eng = Nd_engine.prepare ~metrics:true ~jobs g phi in
  let st = Nd_engine.stats eng in
  (eng, (st.Nd_engine.Stats.ops, List.sort compare st.Nd_engine.Stats.counters))

let payload_bytes eng = Marshal.to_string (Nd_engine.Persist.export eng) []

let test_prepare_differential () =
  List.iter
    (fun (spec, q) ->
      let g = graph spec in
      let phi = Parse.formula q in
      let naive =
        let ctx = Nd_eval.Naive.ctx g in
        Nd_eval.Naive.eval_all ctx ~vars:(Fo.free_vars phi) phi
      in
      let seq, seq_ops = prepared ~jobs:1 g phi in
      let seq_sols = Nd_engine.to_list seq in
      let seq_payload = payload_bytes seq in
      Alcotest.(check bool) (spec ^ " jobs=1 = naive") true (seq_sols = naive);
      List.iter
        (fun jobs ->
          let par, par_ops = prepared ~jobs g phi in
          let name what = Printf.sprintf "%s jobs=%d %s" spec jobs what in
          Alcotest.(check bool)
            (name "enumeration identical")
            true
            (Nd_engine.to_list par = seq_sols);
          Alcotest.(check bool)
            (name "ops counters identical")
            true (par_ops = seq_ops);
          Alcotest.(check bool)
            (name "persist payload identical")
            true
            (payload_bytes par = seq_payload);
          Alcotest.(check int) (name "jobs recorded") jobs
            (Nd_engine.jobs par))
        [ 2; 4 ])
    zoo

(* Updates reuse the handle's job count for the dirty-set bag-jobs;
   answers and ops charged must not depend on it. *)
let test_update_differential () =
  let g = graph "grid:6x6" in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let muts =
    [
      Cgraph.mutation_of_string "add-edge 0 14";
      Cgraph.mutation_of_string "remove-edge 0 14";
      Cgraph.mutation_of_string "set-color 1 7 on";
      Cgraph.mutation_of_string "add-edge 3 22";
    ]
  in
  let run jobs =
    Nd_engine.reset_metrics ();
    let eng = Nd_engine.prepare ~metrics:true ~jobs g phi in
    List.iter (Nd_engine.update eng) muts;
    let st = Nd_engine.stats eng in
    ( Nd_engine.to_list eng,
      st.Nd_engine.Stats.ops,
      List.sort compare st.Nd_engine.Stats.counters,
      Nd_engine.epoch eng )
  in
  let sols1, ops1, ctr1, ep1 = run 1 in
  let sols4, ops4, ctr4, ep4 = run 4 in
  Alcotest.(check bool) "solutions identical after updates" true
    (sols4 = sols1);
  Alcotest.(check int) "epochs agree" ep1 ep4;
  Alcotest.(check int) "ops identical after updates" ops1 ops4;
  Alcotest.(check bool) "counters identical after updates" true (ctr4 = ctr1)

(* jobs beyond the bag count (and beyond the core count) must be
   harmless: the pool just idles the excess workers. *)
let test_oversubscription () =
  let g = graph "path:12" in
  let phi = Parse.formula "E(x,y)" in
  let seq, _ = prepared ~jobs:1 g phi in
  let par, _ = prepared ~jobs:8 g phi in
  Alcotest.(check bool) "jobs=8 on a tiny graph" true
    (Nd_engine.to_list par = Nd_engine.to_list seq)

let test_jobs_validation () =
  let g = graph "path:4" in
  let phi = Parse.formula "E(x,y)" in
  match Nd_engine.prepare ~jobs:0 g phi with
  | _ -> Alcotest.fail "jobs=0 must be rejected"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "prepare jobs=4 = jobs=1 = naive (zoo)" `Quick
      test_prepare_differential;
    Alcotest.test_case "update differential across job counts" `Quick
      test_update_differential;
    Alcotest.test_case "oversubscribed pool is harmless" `Quick
      test_oversubscription;
    Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
  ]
