(* Differential fuzzing: random formulas of the guarded-local fragment
   (and beyond), random sparse graphs, enumeration and testing compared
   against the naive evaluator.  This is the broadest net over the
   compiler + answering pipeline. *)

open Nd_graph
open Nd_logic

(* --- random formula generation ------------------------------------- *)

let colors = 3

let atom_over rng vars =
  let v () = List.nth vars (Random.State.int rng (List.length vars)) in
  match Random.State.int rng 5 with
  | 0 -> Fo.Edge (v (), v ())
  | 1 -> Fo.Eq (v (), v ())
  | 2 -> Fo.Color (Random.State.int rng colors, v ())
  | 3 -> Fo.Dist_le (v (), v (), 1 + Random.State.int rng 2)
  | _ -> Fo.Not (Fo.Dist_le (v (), v (), 1 + Random.State.int rng 2))

let guard rng z vars =
  let anchor = List.nth vars (Random.State.int rng (List.length vars)) in
  match Random.State.int rng 2 with
  | 0 -> Fo.Edge (z, anchor)
  | _ -> Fo.Dist_le (z, anchor, 1 + Random.State.int rng 2)

(* depth-bounded random formula over [vars]; quantified variables are
   always guarded, so the result lies in the compiled fragment unless
   simplification degenerates it *)
let rec formula rng depth vars =
  if depth = 0 || Random.State.int rng 3 = 0 then atom_over rng vars
  else
    match Random.State.int rng 5 with
    | 0 ->
        Fo.And [ formula rng (depth - 1) vars; formula rng (depth - 1) vars ]
    | 1 -> Fo.Or [ formula rng (depth - 1) vars; formula rng (depth - 1) vars ]
    | 2 -> Fo.Not (atom_over rng vars)
    | 3 ->
        let z = Printf.sprintf "q%d" depth in
        Fo.Exists
          (z, Fo.And [ guard rng z vars; formula rng (depth - 1) (z :: vars) ])
    | _ ->
        let z = Printf.sprintf "u%d" depth in
        Fo.Forall
          ( z,
            Fo.Or
              [
                Fo.Not (guard rng z vars); formula rng (depth - 1) (z :: vars);
              ] )

let check_one rng seed =
  let n = 12 + Random.State.int rng 18 in
  let g =
    Gen.randomly_color ~seed ~colors
      (Gen.bounded_degree ~seed n ~max_degree:3)
  in
  let ctx = Nd_eval.Naive.ctx g in
  let arity = 1 + Random.State.int rng 2 in
  let vars = List.filteri (fun i _ -> i < arity) [ "x"; "y" ] in
  let phi =
    (* make sure every intended variable occurs freely *)
    Fo.And
      (formula rng 3 vars
      :: List.map (fun v -> Fo.Dist_le (v, v, 0)) vars)
  in
  let fvs = Fo.free_vars phi in
  let expected = Nd_eval.Naive.eval_all ctx ~vars:fvs phi in
  let eng = Nd_engine.prepare g phi in
  let got = Nd_engine.to_list eng in
  if got <> expected then begin
    QCheck.Test.fail_reportf
      "mismatch on %s (compiled: %b): naive %d sols, pipeline %d"
      (Fo.to_string phi)
      (match Nd_core.Compile.compile phi with
      | Nd_core.Compile.Compiled _ -> true
      | _ -> false)
      (List.length expected) (List.length got)
  end;
  (* spot-check next_solution from random tuples *)
  let k = List.length fvs in
  for _ = 1 to 10 do
    let t = Array.init k (fun _ -> Random.State.int rng n) in
    let expect =
      List.find_opt (fun s -> Nd_util.Tuple.compare s t >= 0) expected
    in
    if Nd_engine.next eng t <> expect then
      QCheck.Test.fail_reportf "next_solution wrong on %s"
        (Fo.to_string phi)
  done;
  true

let prop_fuzz =
  QCheck.Test.make ~name:"random guarded formulas: pipeline = naive" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 31337 |] in
      check_one rng seed)

(* --- fixed higher-arity cases -------------------------------------- *)

let test_quaternary () =
  let g = Gen.randomly_color ~seed:17 ~colors:2 (Gen.cycle 11) in
  let ctx = Nd_eval.Naive.ctx g in
  List.iter
    (fun q ->
      let phi = Parse.formula q in
      let expected =
        Nd_eval.Naive.eval_all ctx ~vars:(Fo.free_vars phi) phi
      in
      let eng = Nd_engine.prepare g phi in
      let got = Nd_engine.to_list eng in
      if got <> expected then
        Alcotest.failf "%s: %d vs %d" q (List.length expected)
          (List.length got))
    [
      "E(w,x) & E(x,y) & E(y,z)";
      "E(w,x) & dist(x,y) > 2 & E(y,z)";
      "dist(w,x) <= 1 & dist(x,y) <= 1 & dist(y,z) <= 1 & C0(z)";
    ]

let test_unary_queries () =
  let g = Gen.randomly_color ~seed:18 ~colors:2 (Gen.grid 9 9) in
  let ctx = Nd_eval.Naive.ctx g in
  List.iter
    (fun q ->
      let phi = Parse.formula q in
      let expected =
        Nd_eval.Naive.eval_all ctx ~vars:(Fo.free_vars phi) phi
      in
      let eng = Nd_engine.prepare g phi in
      Alcotest.(check bool)
        (q ^ " matches")
        true
        (Nd_engine.to_list eng = expected))
    [
      "C0(x)";
      "exists y. E(x,y) & C1(y)";
      "forall y. dist(x,y) > 1 | ~C0(y)";
      "exists y z. E(x,y) & E(y,z) & C0(z)";
      "C0(x) & (exists y. dist(x,y) <= 2 & C1(y))";
    ]

let test_arity_five_falls_back_but_works () =
  let g = Gen.randomly_color ~seed:19 ~colors:2 (Gen.path 7) in
  let phi = Parse.formula "E(v,w) & E(w,x) & E(x,y) & E(y,z)" in
  (match Nd_core.Compile.compile phi with
  | Nd_core.Compile.Fallback _ -> ()
  | _ -> Alcotest.fail "arity 5 should fall back");
  let ctx = Nd_eval.Naive.ctx g in
  let expected = Nd_eval.Naive.eval_all ctx ~vars:(Fo.free_vars phi) phi in
  let eng = Nd_engine.prepare g phi in
  Alcotest.(check bool) "fallback exact" true
    (Nd_engine.to_list eng = expected)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fuzz;
    Alcotest.test_case "quaternary queries" `Slow test_quaternary;
    Alcotest.test_case "unary queries" `Quick test_unary_queries;
    Alcotest.test_case "arity-5 fallback" `Quick
      test_arity_five_falls_back_but_works;
  ]
