(* Gen.of_spec: the textual graph-spec dispatch used by the CLI and
   bench.  One case per documented form of [Gen.spec_grammar], plus the
   malformed-spec behavior the CLI relies on (Invalid_argument carrying
   the grammar). *)

open Nd_graph

let max_degree g =
  let d = ref 0 in
  for v = 0 to Cgraph.n g - 1 do
    d := max !d (Cgraph.degree g v)
  done;
  !d

let test_documented_specs () =
  let check name spec ~n ?m ?max_deg () =
    let g = Gen.of_spec ~seed:1 spec in
    Alcotest.(check int) (name ^ " n") n (Cgraph.n g);
    (match m with
    | Some m -> Alcotest.(check int) (name ^ " m") m (Cgraph.m g)
    | None ->
        Alcotest.(check bool) (name ^ " has edges") true (Cgraph.m g > 0));
    match max_deg with
    | Some d ->
        Alcotest.(check bool)
          (name ^ " degree bound")
          true
          (max_degree g <= d)
    | None -> ()
  in
  check "grid" "grid:4x3" ~n:12 ~m:17 ();
  check "planar" "planar:4x4" ~n:16 ();
  check "tree" "tree:20" ~n:20 ~m:19 ();
  check "path" "path:9" ~n:9 ~m:8 ();
  check "cycle" "cycle:10" ~n:10 ~m:10 ();
  check "star" "star:8" ~n:8 ~m:7 ();
  check "clique" "clique:6" ~n:6 ~m:15 ();
  check "bdeg" "bdeg:30:3" ~n:30 ~max_deg:3 ();
  check "ktree" "ktree:20:3" ~n:20 ();
  (* subdivided clique on q vertices with q extra vertices per edge *)
  check "subdiv" "subdiv:3" ~n:12 ~m:12 ();
  check "gnp" "gnp:30:0.1" ~n:30 ()

let test_seed_determinism () =
  List.iter
    (fun spec ->
      let g1 = Gen.of_spec ~seed:5 spec in
      let g2 = Gen.of_spec ~seed:5 spec in
      Alcotest.(check bool) (spec ^ " deterministic") true (Cgraph.equal g1 g2))
    [ "tree:25"; "bdeg:40:3"; "gnp:25:0.15"; "planar:5x5"; "ktree:25:3" ]

let test_invalid_specs () =
  List.iter
    (fun spec ->
      match Gen.of_spec spec with
      | _ -> Alcotest.failf "spec %S should be rejected" spec
      | exception Invalid_argument msg ->
          (* the error must carry the grammar so CLI users see the menu *)
          let mentions_grammar =
            let sub = "grid:WxH" in
            let rec find i =
              i + String.length sub <= String.length msg
              && (String.sub msg i (String.length sub) = sub || find (i + 1))
            in
            find 0
          in
          Alcotest.(check bool) (spec ^ " error lists grammar") true
            mentions_grammar)
    [
      "";
      "grid";
      "grid:4";
      "grid:4x";
      "grid:ax b";
      "wat:3";
      "tree:x";
      "bdeg:10";
      "gnp:10:notafloat";
      "clique:6:9";
    ]

let suite =
  [
    Alcotest.test_case "every documented spec form" `Quick
      test_documented_specs;
    Alcotest.test_case "seeded specs are deterministic" `Quick
      test_seed_determinism;
    Alcotest.test_case "malformed specs rejected" `Quick test_invalid_specs;
  ]
