(* The empirical constant-delay profiler (Corollary 2.5 as a
   measurement): the verdict arithmetic, a real run over the zoo, and
   the machine-readable report. *)

let test_verdict_arithmetic () =
  Alcotest.(check bool)
    "flat maxes are invariant" true
    (Nd_profile.delay_invariant ~tolerance:1.2 [ 15; 15; 15 ]);
  Alcotest.(check bool)
    "within tolerance" true
    (Nd_profile.delay_invariant ~tolerance:1.2 [ 10; 11; 12 ]);
  Alcotest.(check bool)
    "growth flagged" false
    (Nd_profile.delay_invariant ~tolerance:1.2 [ 10; 80 ]);
  Alcotest.(check bool)
    "empty list is not invariant" false
    (Nd_profile.delay_invariant ~tolerance:1.2 []);
  (* the +0.5 jitter allowance: 1.2 × 4 = 4.8 < 5 alone, but the
     half-op slack absorbs the off-by-one *)
  Alcotest.(check bool)
    "off-by-one at tiny counts tolerated" true
    (Nd_profile.delay_invariant ~tolerance:1.2 [ 4; 5 ])

let test_run_grid_is_invariant () =
  let r =
    Nd_profile.run ~spec:"grid" ~sizes:[ 49; 100 ] ~limit:300 ()
  in
  Alcotest.(check int) "one point per size" 2 (List.length r.Nd_profile.points);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "answers produced" true (p.Nd_profile.answers > 0);
      Alcotest.(check bool)
        "percentiles ordered" true
        (p.Nd_profile.ops_p50 <= p.Nd_profile.ops_p95
        && p.Nd_profile.ops_p95 <= p.Nd_profile.ops_p99
        && p.Nd_profile.ops_p99 <= p.Nd_profile.ops_max))
    r.Nd_profile.points;
  (* the library's own claim: enumeration delay in ops does not grow
     with the instance *)
  Alcotest.(check bool) "delay-invariant on grid" true
    r.Nd_profile.delay_invariant

let test_json_report () =
  let r = Nd_profile.run ~spec:"path" ~sizes:[ 40; 80 ] ~limit:200 () in
  let doc = Nd_profile.to_json r in
  match Nd_trace.Json.parse doc with
  | Error e -> Alcotest.failf "report is not JSON: %s" e
  | Ok j -> (
      (match Nd_trace.Json.member "schema" j with
      | Some (Nd_trace.Json.Str "nd-profile/1") -> ()
      | _ -> Alcotest.fail "schema tag missing");
      (match Nd_trace.Json.member "spec" j with
      | Some (Nd_trace.Json.Str "path") -> ()
      | _ -> Alcotest.fail "spec missing");
      (match Nd_trace.Json.member "points" j with
      | Some (Nd_trace.Json.Arr pts) ->
          Alcotest.(check int) "two points" 2 (List.length pts);
          List.iter
            (fun p ->
              match Nd_trace.Json.member "ops" p with
              | Some ops -> (
                  match Nd_trace.Json.member "max" ops with
                  | Some (Nd_trace.Json.Num v) ->
                      Alcotest.(check bool) "ops max positive" true (v > 0.)
                  | _ -> Alcotest.fail "point lacks ops.max")
              | None -> Alcotest.fail "point lacks ops")
            pts
      | _ -> Alcotest.fail "points missing");
      match Nd_trace.Json.member "delay_invariant" j with
      | Some (Nd_trace.Json.Bool b) ->
          Alcotest.(check bool) "verdict serialized" r.Nd_profile.delay_invariant b
      | _ -> Alcotest.fail "delay_invariant missing")

let test_unknown_family_rejected () =
  match Nd_profile.run ~spec:"no-such-family" ~sizes:[ 10 ] () with
  | _ -> Alcotest.fail "unknown family accepted"
  | exception Invalid_argument _ -> ()

let test_metrics_state_restored () =
  Nd_util.Metrics.disable ();
  ignore (Nd_profile.run ~spec:"path" ~sizes:[ 30 ] ~limit:50 ());
  (* run enables metrics internally but must restore the caller's
     state — observations after the run must not accumulate *)
  Nd_util.Metrics.reset ();
  Nd_util.Metrics.add (Nd_util.Metrics.counter "prof.after") 3;
  Alcotest.(check int) "metrics still disabled after run" 0
    (Nd_util.Metrics.value (Nd_util.Metrics.counter "prof.after"))

let suite =
  [
    Alcotest.test_case "verdict arithmetic" `Quick test_verdict_arithmetic;
    Alcotest.test_case "grid run is delay-invariant" `Quick
      test_run_grid_is_invariant;
    Alcotest.test_case "JSON report round-trip" `Quick test_json_report;
    Alcotest.test_case "unknown family rejected" `Quick
      test_unknown_family_rejected;
    Alcotest.test_case "caller metrics state restored" `Quick
      test_metrics_state_restored;
  ]
