(* The crash-recovery supervisor: decision machine (backoff growth,
   circuit breaker, window forgiveness) driven with a fake clock, the
   run loop driven with fake spawn/wait (no fork — domains may already
   be live in this binary), and epoch continuity across simulated
   worker lifetimes via the snapshot + journal recovery path. *)

open Nd_graph
open Nd_logic
module Sup = Nd_server.Supervisor
module Server = Nd_server

let policy ?(max_crashes = 4) ?(window_ms = 10_000) () =
  {
    Sup.backoff = Nd_util.Backoff.schedule ~max_ms:5_000 100;
    max_crashes;
    window_ms;
  }

let test_decide_backoff_grows () =
  let p = policy () in
  let st = Sup.init () in
  (match Sup.decide p st ~now_ms:0 (Sup.Signaled 9) with
  | Sup.Restart_after_ms d -> Alcotest.(check int) "first crash: base" 100 d
  | Sup.Give_up r -> Alcotest.failf "gave up on first crash: %s" r);
  (match Sup.decide p st ~now_ms:100 (Sup.Signaled 9) with
  | Sup.Restart_after_ms d -> Alcotest.(check int) "second: doubled" 200 d
  | Sup.Give_up r -> Alcotest.failf "gave up: %s" r);
  (match Sup.decide p st ~now_ms:300 (Sup.Exited 1) with
  | Sup.Restart_after_ms d -> Alcotest.(check int) "third: doubled again" 400 d
  | Sup.Give_up r -> Alcotest.failf "gave up: %s" r);
  (* fourth crash in the window trips the breaker (max_crashes = 4) *)
  match Sup.decide p st ~now_ms:700 (Sup.Signaled 11) with
  | Sup.Give_up reason ->
      Alcotest.(check bool) "reason names the signal" true
        (String.length reason > 0)
  | Sup.Restart_after_ms _ -> Alcotest.fail "breaker did not trip"

let test_decide_window_forgives () =
  let p = policy ~max_crashes:3 ~window_ms:1_000 () in
  let st = Sup.init () in
  (match Sup.decide p st ~now_ms:0 (Sup.Exited 1) with
  | Sup.Restart_after_ms d -> Alcotest.(check int) "crash 1" 100 d
  | Sup.Give_up r -> Alcotest.failf "gave up: %s" r);
  (match Sup.decide p st ~now_ms:100 (Sup.Exited 1) with
  | Sup.Restart_after_ms d -> Alcotest.(check int) "crash 2" 200 d
  | Sup.Give_up r -> Alcotest.failf "gave up: %s" r);
  (* a long healthy stretch: both crashes age out of the window, so the
     next one restarts at the base delay instead of tripping *)
  (match Sup.decide p st ~now_ms:5_000 (Sup.Exited 1) with
  | Sup.Restart_after_ms d -> Alcotest.(check int) "window reset" 100 d
  | Sup.Give_up r -> Alcotest.failf "breaker remembered forgiven crashes: %s" r);
  Alcotest.(check int) "window population" 1
    (Sup.crashes_in_window p st ~now_ms:5_000)

let test_run_restarts_then_clean_exit () =
  let spawns = ref 0 in
  let sleeps = ref [] in
  let clock = ref 0 in
  let spawn () =
    incr spawns;
    !spawns
  in
  (* two crashes, then a clean exit *)
  let wait n = if n <= 2 then Sup.Signaled 9 else Sup.Exited 0 in
  let r =
    Sup.run ~policy:(policy ())
      ~sleep_ms:(fun ms ->
        sleeps := ms :: !sleeps;
        clock := !clock + ms)
      ~now_ms:(fun () -> !clock)
      ~spawn ~wait ()
  in
  Alcotest.(check bool) "clean shutdown" true (r = Ok ());
  Alcotest.(check int) "three worker lifetimes" 3 !spawns;
  Alcotest.(check (list int)) "backoff between restarts" [ 100; 200 ]
    (List.rev !sleeps)

let test_run_breaker_gives_up () =
  let spawns = ref 0 in
  let clock = ref 0 in
  let spawn () =
    incr spawns;
    !spawns
  in
  let wait _ = Sup.Exited 1 in
  let r =
    Sup.run
      ~policy:(policy ~max_crashes:3 ())
      ~sleep_ms:(fun ms -> clock := !clock + ms)
      ~now_ms:(fun () -> !clock)
      ~spawn ~wait ()
  in
  (match r with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "always-crashing worker reported clean exit");
  Alcotest.(check int) "exactly max_crashes lifetimes" 3 !spawns

(* Epoch continuity through the snapshot + journal path — the recovery
   a supervised worker performs after kill -9, simulated in-process:
   each "lifetime" revives the same snapshot and replays the journal
   the previous lifetime appended. *)
let test_epoch_continuity_via_journal () =
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nd_sup_%d.snap" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
  @@ fun () ->
  let g = Gen.randomly_color ~seed:5 ~colors:3 (Gen.grid 5 5) in
  let phi = Parse.formula "dist(x,y) <= 2" in
  ignore (Nd_snapshot.save ~path:tmp (Nd_engine.prepare g phi));
  let journal = ref [] in
  let sink line = journal := line :: !journal in
  (* lifetime 1: revive, absorb two mutations, then "crash" (drop the
     handle without any orderly shutdown) *)
  let eng1, _ = Nd_snapshot.load_or_rebuild ~path:tmp g phi in
  let srv1 =
    Server.create
      ~config:{ Server.default_config with Server.journal = Some sink }
      eng1
  in
  (match Server.handle srv1 "update add-edge 0 24" with
  | [ _; "ok" ] -> ()
  | r -> Alcotest.failf "update failed: %s" (String.concat "|" r));
  (match Server.handle srv1 "update remove-edge 0 24" with
  | [ _; "ok" ] -> ()
  | r -> Alcotest.failf "update failed: %s" (String.concat "|" r));
  Alcotest.(check int) "journal recorded each applied mutation" 2
    (List.length !journal);
  Alcotest.(check int) "pre-crash epoch" 2 (Nd_engine.epoch eng1);
  (* lifetime 2: revive the same snapshot, replay the journal *)
  let muts = List.rev_map Cgraph.mutation_of_string !journal in
  let eng2, outcome = Nd_snapshot.load_or_rebuild ~journal:muts ~path:tmp g phi in
  (match outcome with
  | Nd_snapshot.Loaded -> ()
  | Nd_snapshot.Rebuilt c ->
      Alcotest.failf "snapshot rejected: %s" (Nd_snapshot.describe c));
  let srv2 = Server.create eng2 in
  Alcotest.(check (list string)) "post-restart epoch continues" [ "epoch 2"; "ok" ]
    (Server.handle srv2 "epoch");
  (* and the replayed answers match a fresh prepare over the same
     mutation history *)
  let g' =
    List.fold_left Cgraph.apply g
      [ Cgraph.Add_edge (0, 24); Cgraph.Remove_edge (0, 24) ]
  in
  Alcotest.(check (list (array int)))
    "replayed solutions match fresh prepare"
    (Nd_engine.to_list (Nd_engine.prepare g' phi))
    (Nd_engine.to_list eng2)

let suite =
  [
    Alcotest.test_case "backoff grows until the breaker trips" `Quick
      test_decide_backoff_grows;
    Alcotest.test_case "window forgives old crashes" `Quick
      test_decide_window_forgives;
    Alcotest.test_case "run: restart twice, then clean exit" `Quick
      test_run_restarts_then_clean_exit;
    Alcotest.test_case "run: breaker gives up" `Quick
      test_run_breaker_gives_up;
    Alcotest.test_case "epoch continuity via snapshot + journal" `Quick
      test_epoch_continuity_via_journal;
  ]
