(* Snapshot persistence: round-trips across the generator zoo must be
   answer-identical to a fresh prepare, and every on-disk corruption
   class (truncation, bit flips, stale versions, swapped or
   transplanted sections, wrong graph/query) must be *detected* at load
   — never deserialized into a live handle — with load_or_rebuild
   degrading to a budgeted rebuild. *)

open Nd_graph
open Nd_logic
module Snap = Nd_snapshot
module Disk = Nd_ram.Chaos.Disk

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nd_snapshot_test_%d_%d.snap" (Unix.getpid ())
       !tmp_counter)

let with_tmp f =
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let graph_of spec = Gen.randomly_color ~seed:7 ~colors:3 (Gen.of_spec ~seed:7 spec)

let probe_tuples g k =
  let n = Cgraph.n g in
  if k = 0 then [ [||] ]
  else
    [
      Array.make k 0;
      Array.init k (fun i -> (i * 3) mod n);
      Array.make k (n - 1);
      Array.init k (fun i -> (n - 1 - i) mod n);
    ]

(* save → load → the loaded handle answers next/test/enumerate exactly
   like a freshly prepared one *)
let differential_roundtrip spec query =
  with_tmp @@ fun path ->
  let g = graph_of spec in
  let phi = Parse.formula query in
  let fresh = Nd_engine.prepare g phi in
  (* warm part of the cache so the snapshot carries a non-trivial store *)
  Nd_engine.enumerate ~limit:25 (fun _ -> ()) fresh;
  let bytes = Snap.save ~path fresh in
  Alcotest.(check bool)
    (spec ^ ": snapshot non-empty") true (bytes > 0 && Disk.size path = bytes);
  let loaded =
    match Snap.load ~path g phi with
    | Ok eng -> eng
    | Error c -> Alcotest.failf "%s: clean snapshot rejected: %s" spec (Snap.describe c)
  in
  Alcotest.(check bool)
    (spec ^ ": cache revived") true
    (Nd_engine.cache_size loaded = Nd_engine.cache_size fresh);
  let reference = Nd_engine.prepare g phi in
  if Nd_engine.arity reference = 0 then
    Alcotest.(check bool)
      (spec ^ ": sentence verdict") (Nd_engine.holds reference)
      (Nd_engine.holds loaded)
  else begin
    Alcotest.(check bool)
      (spec ^ ": enumeration identical") true
      (Nd_engine.to_list loaded = Nd_engine.to_list reference);
    List.iter
      (fun t ->
        Alcotest.(check bool)
          (spec ^ ": next agrees") true
          (Nd_engine.next loaded t = Nd_engine.next reference t);
        Alcotest.(check bool)
          (spec ^ ": test agrees") true
          (Nd_engine.test loaded t = Nd_engine.test reference t))
      (probe_tuples g (Nd_engine.arity reference))
  end

let zoo =
  [
    "grid:6x6"; "planar:5x5"; "tree:40"; "path:30"; "cycle:30"; "star:20";
    "clique:8"; "bdeg:60:3"; "ktree:40:3"; "subdiv:4"; "gnp:40:0.08";
  ]

let test_zoo_roundtrips () =
  List.iter (fun spec -> differential_roundtrip spec "dist(x,y) <= 2") zoo

let test_roundtrip_other_queries () =
  differential_roundtrip "grid:6x6" "C0(x) & dist(x,y) > 2";
  differential_roundtrip "tree:40" "E(x,y)";
  (* sentences persist the Tester *)
  differential_roundtrip "grid:6x6" "exists x y. E(x,y)"

let test_warm_cache_roundtrip () =
  (* a *complete* cache must revive as complete and keep serving *)
  with_tmp @@ fun path ->
  let g = graph_of "grid:5x5" in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let fresh = Nd_engine.prepare g phi in
  let all = Nd_engine.to_list fresh in
  Alcotest.(check bool) "cache complete" true (Nd_engine.cache_complete fresh);
  ignore (Snap.save ~path fresh);
  match Snap.load ~path g phi with
  | Error c -> Alcotest.failf "rejected: %s" (Snap.describe c)
  | Ok loaded ->
      Alcotest.(check bool) "completeness revived" true
        (Nd_engine.cache_complete loaded);
      Alcotest.(check bool) "answers from revived store" true
        (Nd_engine.to_list loaded = all)

(* ---------------- corruption classes ---------------- *)

(* one small reference snapshot everything below corrupts copies of *)
let make_reference () =
  let g = graph_of "grid:5x5" in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare g phi in
  Nd_engine.enumerate ~limit:10 (fun _ -> ()) eng;
  (g, phi, eng)

let expect_rejected what path g phi =
  match Snap.load ~path g phi with
  | Ok _ -> Alcotest.failf "%s: corrupted snapshot produced a live handle" what
  | Error c ->
      Alcotest.(check bool)
        (what ^ ": describable") true
        (String.length (Snap.describe c) > 0);
      c

let test_truncation_detected () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  let bytes = Snap.save ~path eng in
  let original = Disk.read path in
  (* deterministic cut points: empty file, inside magic, at each header
     field boundary, inside each section, one byte short *)
  let cuts =
    [ 0; 1; 7; 8; 11; 12; 15; 16; 20; 40; bytes / 2; bytes - 1 ]
    |> List.sort_uniq compare
    |> List.filter (fun k -> k >= 0 && k < bytes)
  in
  List.iter
    (fun k ->
      Disk.write path original;
      Disk.truncate_at path k;
      ignore (expect_rejected (Printf.sprintf "truncate@%d" k) path g phi))
    cuts

let test_truncation_random () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  let bytes = Snap.save ~path eng in
  let original = Disk.read path in
  let st = Random.State.make [| 0xdead |] in
  for _ = 1 to 50 do
    let k = Random.State.int st bytes in
    Disk.write path original;
    Disk.truncate_at path k;
    ignore (expect_rejected (Printf.sprintf "truncate@%d" k) path g phi)
  done

let test_bitflip_detected () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  let bytes = Snap.save ~path eng in
  let original = Disk.read path in
  let st = Random.State.make [| 0xf11b |] in
  for _ = 1 to 100 do
    let byte = Random.State.int st bytes in
    let bit = Random.State.int st 8 in
    Disk.write path original;
    Disk.flip_bit path ~byte ~bit;
    ignore
      (expect_rejected (Printf.sprintf "flip %d.%d" byte bit) path g phi)
  done

let test_stale_version_detected () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  ignore (Snap.save ~path eng);
  (* the u32 LE format version lives right after the 8-byte magic *)
  Disk.patch path ~pos:8 "\x63\x00\x00\x00";
  match expect_rejected "stale version" path g phi with
  | Snap.Version_skew _ -> ()
  | c -> Alcotest.failf "expected Version_skew, got %s" (Snap.describe c)

let test_swapped_sections_detected () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  ignore (Snap.save ~path eng);
  let sections =
    match Snap.layout ~path with
    | Ok s -> s
    | Error c -> Alcotest.failf "layout of clean file: %s" (Snap.describe c)
  in
  let whole s = (s.Snap.off - 12, s.Snap.len + 12) in
  (match sections with
  | meta :: engn :: _ ->
      (* swap the entire META and ENGN sections (headers included):
         both survive byte-for-byte, but in the wrong order *)
      Disk.swap_ranges path (whole meta) (whole engn);
      (match expect_rejected "swapped sections" path g phi with
      | Snap.Bad_layout _ | Snap.Truncated _ -> ()
      | c -> Alcotest.failf "expected layout error, got %s" (Snap.describe c))
  | _ -> Alcotest.fail "fewer than two sections");
  (* payload-only swap: tags stay in place, contents exchanged *)
  let original_eng = Nd_engine.prepare g phi in
  Nd_engine.enumerate ~limit:10 (fun _ -> ()) original_eng;
  ignore (Snap.save ~path original_eng);
  (match Snap.layout ~path with
  | Ok (meta :: engn :: _) ->
      let l = min meta.Snap.len engn.Snap.len in
      Disk.swap_ranges path (meta.Snap.off, l) (engn.Snap.off, l);
      (match expect_rejected "swapped payloads" path g phi with
      | Snap.Checksum _ -> ()
      | c -> Alcotest.failf "expected Checksum, got %s" (Snap.describe c))
  | Ok _ -> Alcotest.fail "fewer than two sections"
  | Error c -> Alcotest.failf "layout: %s" (Snap.describe c))

let test_trailing_garbage_detected () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  ignore (Snap.save ~path eng);
  Disk.write path (Disk.read path ^ "JUNK");
  match expect_rejected "trailing garbage" path g phi with
  | Snap.Bad_layout _ -> ()
  | c -> Alcotest.failf "expected Bad_layout, got %s" (Snap.describe c)

let test_wrong_instance_detected () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  ignore (Snap.save ~path eng);
  (* same spec, different coloring: a different graph *)
  let g' = Gen.randomly_color ~seed:99 ~colors:3 (Gen.of_spec ~seed:7 "grid:5x5") in
  (match Snap.load ~path g' phi with
  | Ok _ -> Alcotest.fail "snapshot accepted for a different graph"
  | Error (Snap.Mismatch _) -> ()
  | Error c -> Alcotest.failf "expected Mismatch, got %s" (Snap.describe c));
  (* different query *)
  let phi' = Parse.formula "dist(x,y) <= 1" in
  (match Snap.load ~path g phi' with
  | Ok _ -> Alcotest.fail "snapshot accepted for a different query"
  | Error (Snap.Mismatch _) -> ()
  | Error c -> Alcotest.failf "expected Mismatch, got %s" (Snap.describe c));
  (* and the right instance still loads after all those rejections *)
  match Snap.load ~path g phi with
  | Ok _ -> ()
  | Error c -> Alcotest.failf "clean load after rejections: %s" (Snap.describe c)

let test_transplanted_section_detected () =
  (* the deep check: sections with *valid* CRCs transplanted from a
     different, internally consistent snapshot must still be rejected
     by the decoded-payload cross-checks *)
  with_tmp @@ fun path_a ->
  with_tmp @@ fun path_b ->
  let phi = Parse.formula "dist(x,y) <= 2" in
  let ga = graph_of "grid:5x5" in
  let gb = graph_of "cycle:25" in
  let ea = Nd_engine.prepare ga phi and eb = Nd_engine.prepare gb phi in
  Nd_engine.enumerate ~limit:10 (fun _ -> ()) ea;
  Nd_engine.enumerate ~limit:10 (fun _ -> ()) eb;
  ignore (Snap.save ~path:path_a ea);
  ignore (Snap.save ~path:path_b eb);
  let lay p =
    match Snap.layout ~path:p with
    | Ok s -> s
    | Error c -> Alcotest.failf "layout: %s" (Snap.describe c)
  in
  let la = lay path_a and lb = lay path_b in
  let a = Disk.read path_a and b = Disk.read path_b in
  let whole s bytes = String.sub bytes (s.Snap.off - 12) (s.Snap.len + 12) in
  let sec name l = List.find (fun s -> s.Snap.tag = name) l in
  (* splice B's ENGN section (valid tag, len, crc) into A's file *)
  let sa = sec "ENGN" la and sb = sec "ENGN" lb in
  let spliced =
    String.sub a 0 (sa.Snap.off - 12)
    ^ whole sb b
    ^ String.sub a
        (sa.Snap.off + sa.Snap.len)
        (String.length a - sa.Snap.off - sa.Snap.len)
  in
  Disk.write path_a spliced;
  match Snap.load ~path:path_a ga phi with
  | Ok _ -> Alcotest.fail "transplanted ENGN section produced a live handle"
  | Error (Snap.Decode _ | Snap.Mismatch _) -> ()
  | Error c ->
      Alcotest.failf "expected Decode/Mismatch, got %s" (Snap.describe c)

let test_load_or_rebuild_fallback () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  let expected = Nd_engine.to_list eng in
  ignore (Snap.save ~path eng);
  (* clean file: loads *)
  let _, outcome = Snap.load_or_rebuild ~path g phi in
  Alcotest.(check bool) "clean loads" true (outcome = Snap.Loaded);
  (* corrupted file: rebuilds, and the rebuilt handle is exact *)
  Disk.flip_bit path ~byte:(Disk.size path / 2) ~bit:3;
  let rebuilt, outcome = Snap.load_or_rebuild ~path g phi in
  (match outcome with
  | Snap.Rebuilt c ->
      Alcotest.(check bool) "reason recorded" true
        (String.length (Snap.describe c) > 0)
  | Snap.Loaded -> Alcotest.fail "corrupted snapshot loaded");
  Alcotest.(check bool) "rebuilt handle exact" true
    (Nd_engine.to_list rebuilt = expected);
  (* missing file: also a rebuild, not an exception *)
  Sys.remove path;
  let rebuilt2, outcome2 = Snap.load_or_rebuild ~path g phi in
  (match outcome2 with
  | Snap.Rebuilt _ -> ()
  | Snap.Loaded -> Alcotest.fail "missing file loaded");
  Alcotest.(check bool) "rebuild after missing file exact" true
    (Nd_engine.to_list rebuilt2 = expected)

let test_degraded_handle_refused () =
  with_tmp @@ fun path ->
  let g = graph_of "bdeg:60:3" in
  let phi = Parse.formula "dist(x,y) <= 2" in
  let eng =
    Nd_engine.prepare ~budget:(Nd_util.Budget.create ~max_ops:1 ()) g phi
  in
  Alcotest.(check bool) "degraded" true (Nd_engine.degraded eng);
  match Snap.save ~path eng with
  | exception Nd_error.User_error _ -> ()
  | _ -> Alcotest.fail "degraded handle was snapshotted"

let test_info_and_layout () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  let bytes = Snap.save ~path eng in
  (match Snap.layout ~path with
  | Ok sections ->
      Alcotest.(check (list string)) "section order"
        [ "META"; "ENGN"; "CACH"; "STOR" ]
        (List.map (fun s -> s.Snap.tag) sections);
      let last = List.nth sections 3 in
      Alcotest.(check int) "sections tile the file" bytes
        (last.Snap.off + last.Snap.len)
  | Error c -> Alcotest.failf "layout: %s" (Snap.describe c));
  match Snap.info ~path with
  | Error c -> Alcotest.failf "info: %s" (Snap.describe c)
  | Ok i ->
      Alcotest.(check int) "version" 3 i.Snap.version;
      Alcotest.(check bool) "warmable on this host"
        (Sys.int_size = 63 && not Sys.big_endian)
        i.Snap.warmable;
      Alcotest.(check int) "epoch" (Cgraph.epoch g) i.Snap.graph_epoch;
      Alcotest.(check string) "query text" (Nd_logic.Fo.to_string phi) i.Snap.query;
      Alcotest.(check int) "graph n" (Cgraph.n g) i.Snap.graph_n;
      Alcotest.(check int) "graph fingerprint" (Snap.fingerprint g)
        i.Snap.graph_fingerprint;
      Alcotest.(check int) "cached count" (Nd_engine.cache_size eng)
        i.Snap.cached_solutions

let test_atomic_overwrite () =
  (* saving over an existing snapshot must leave a valid file (temp +
     rename), and fingerprints are order-insensitive *)
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  ignore (Snap.save ~path eng);
  ignore (Snap.save ~path eng);
  (match Snap.load ~path g phi with
  | Ok _ -> ()
  | Error c -> Alcotest.failf "overwritten snapshot invalid: %s" (Snap.describe c));
  let edges g = Cgraph.fold_edges (fun u v acc -> (u, v) :: acc) g [] in
  let g_rev =
    Cgraph.create ~n:(Cgraph.n g)
      ~colors:
        (Array.init (Cgraph.color_count g) (fun c ->
             let s = Nd_util.Bitset.create (Cgraph.n g) in
             Array.iter
               (fun v -> Nd_util.Bitset.add s v)
               (Cgraph.color_members g ~color:c);
             s))
      (List.rev (edges g))
  in
  Alcotest.(check int) "fingerprint ignores edge order" (Snap.fingerprint g)
    (Snap.fingerprint g_rev)

(* ABA: mutate-and-revert yields a structurally identical graph with a
   different epoch — every structural check passes, only the epoch
   counter can reject the stale snapshot *)
let test_stale_epoch_detected () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  ignore (Snap.save ~path eng);
  let g' =
    List.fold_left Cgraph.apply g
      [ Cgraph.Add_edge (0, 24); Cgraph.Remove_edge (0, 24) ]
  in
  Alcotest.(check bool) "ABA structure equal" true (Cgraph.equal g g');
  Alcotest.(check int) "ABA fingerprint equal" (Snap.fingerprint g)
    (Snap.fingerprint g');
  (match expect_rejected "stale epoch" path g' phi with
  | Snap.Stale_epoch { snapshot = 0; current = 2 } -> ()
  | c -> Alcotest.failf "expected Stale_epoch 0/2, got %s" (Snap.describe c));
  (* same-history reload still works *)
  match Snap.load ~path g phi with
  | Ok _ -> ()
  | Error c -> Alcotest.failf "same-epoch load rejected: %s" (Snap.describe c)

(* a snapshot of a mutated engine records the mutated epoch, and a
   matching mutated graph revives it *)
let test_epoch_roundtrip_after_update () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  let mut = Cgraph.Add_edge (0, 24) in
  Nd_engine.update eng mut;
  let g' = Cgraph.apply g mut in
  ignore (Snap.save ~path eng);
  (match Snap.info ~path with
  | Ok i -> Alcotest.(check int) "saved epoch" 1 i.Snap.graph_epoch
  | Error c -> Alcotest.failf "info: %s" (Snap.describe c));
  match Snap.load ~path g' phi with
  | Error c -> Alcotest.failf "mutated-state load rejected: %s" (Snap.describe c)
  | Ok loaded ->
      Alcotest.(check bool) "answers match" true
        (Nd_engine.to_list loaded = Nd_engine.to_list (Nd_engine.prepare g' phi))

let test_journal_replay () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  ignore (Snap.save ~path eng);
  let journal =
    [
      Cgraph.Add_edge (0, 24);
      Cgraph.Remove_edge (0, 1);
      Cgraph.Set_color { color = 0; vertex = 5; present = true };
    ]
  in
  let g' = List.fold_left Cgraph.apply g journal in
  (* clean load: snapshot revives at the base state, journal replays
     through the incremental pipeline *)
  let eng1, outcome = Snap.load_or_rebuild ~journal ~path g phi in
  (match outcome with
  | Snap.Loaded -> ()
  | Snap.Rebuilt c -> Alcotest.failf "clean snapshot rebuilt: %s" (Snap.describe c));
  Alcotest.(check int) "replayed epoch" (List.length journal)
    (Nd_engine.epoch eng1);
  Alcotest.(check bool) "replayed answers" true
    (Nd_engine.to_list eng1 = Nd_engine.to_list (Nd_engine.prepare g' phi));
  (* corrupt the file: the rebuild path must fold the journal into the
     graph before preparing *)
  Disk.flip_bit path ~byte:20 ~bit:0;
  let eng2, outcome = Snap.load_or_rebuild ~journal ~path g phi in
  (match outcome with
  | Snap.Rebuilt _ -> ()
  | Snap.Loaded -> Alcotest.fail "corrupt snapshot loaded");
  Alcotest.(check bool) "rebuilt answers" true
    (Nd_engine.to_list eng2 = Nd_engine.to_list (Nd_engine.prepare g' phi))

(* ---------------- version-3 warm store (STOR section) ---------------- *)

let host_mappable = Sys.int_size = 63 && not Sys.big_endian

let test_warm_routes () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  ignore (Snap.save ~path eng);
  (* default load goes warm; on a 64-bit little-endian host it maps *)
  match Snap.load_routed ~path g phi with
  | Error c -> Alcotest.failf "warm load rejected: %s" (Snap.describe c)
  | Ok (warm_eng, route) -> (
      (match route with
      | Snap.Warm { mapped } ->
          if host_mappable then
            Alcotest.(check bool) "banks memory-mapped" true mapped
      | Snap.Replayed -> Alcotest.fail "v3 snapshot took the replay rung");
      (* the warm handle and the replay handle answer identically *)
      match Snap.load_routed ~warm:false ~path g phi with
      | Error c -> Alcotest.failf "replay load rejected: %s" (Snap.describe c)
      | Ok (cold_eng, cold_route) ->
          Alcotest.(check bool) "warm:false replays" true
            (cold_route = Snap.Replayed);
          Alcotest.(check int) "cache sizes agree"
            (Nd_engine.cache_size cold_eng)
            (Nd_engine.cache_size warm_eng);
          Alcotest.(check bool) "answers agree" true
            (Nd_engine.to_list warm_eng = Nd_engine.to_list cold_eng))

let test_warm_store_stays_live () =
  (* an adopted (possibly mapped) store must stay fully live — cache
     growth and invalidation write to private pages, never the file *)
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  ignore (Snap.save ~path eng);
  let before = Disk.read path in
  let loaded =
    match Snap.load ~path g phi with
    | Ok e -> e
    | Error c -> Alcotest.failf "load: %s" (Snap.describe c)
  in
  (* enumerate everything: grows the revived store well past the
     snapshotted prefix *)
  let all = Nd_engine.to_list loaded in
  Alcotest.(check bool) "serves after revival" true (List.length all > 0);
  Alcotest.(check bool) "complete after full sweep" true
    (Nd_engine.cache_complete loaded);
  (* mutate: invalidation + maintenance on the adopted store *)
  let mut = Cgraph.Add_edge (0, 24) in
  Nd_engine.update loaded mut;
  let g' = Cgraph.apply g mut in
  Alcotest.(check bool) "post-update answers" true
    (Nd_engine.to_list loaded = Nd_engine.to_list (Nd_engine.prepare g' phi));
  Alcotest.(check bool) "snapshot file untouched" true
    (Disk.read path = before)

let test_v2_format_compat () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  let bytes = Snap.save ~format:2 ~path eng in
  (match Snap.layout ~path with
  | Ok sections ->
      Alcotest.(check (list string)) "v2 section order"
        [ "META"; "ENGN"; "CACH" ]
        (List.map (fun s -> s.Snap.tag) sections);
      let last = List.nth sections 2 in
      Alcotest.(check int) "v2 sections tile the file" bytes
        (last.Snap.off + last.Snap.len)
  | Error c -> Alcotest.failf "v2 layout: %s" (Snap.describe c));
  (match Snap.info ~path with
  | Ok i ->
      Alcotest.(check int) "v2 version" 2 i.Snap.version;
      Alcotest.(check bool) "v2 never warmable" false i.Snap.warmable
  | Error c -> Alcotest.failf "v2 info: %s" (Snap.describe c));
  match Snap.load_routed ~path g phi with
  | Error c -> Alcotest.failf "v2 load rejected: %s" (Snap.describe c)
  | Ok (loaded, route) ->
      Alcotest.(check bool) "v2 loads via replay" true
        (route = Snap.Replayed);
      Alcotest.(check int) "v2 cache revived"
        (Nd_engine.cache_size eng)
        (Nd_engine.cache_size loaded);
      Alcotest.(check bool) "v2 answers" true
        (Nd_engine.to_list loaded = Nd_engine.to_list eng)

(* STOR payload layout (see nd_snapshot.mli): present(4) n,k,d,h(16)
   epsilon(8) free,card,klen,vlen,limit(20) full,complete,fset(12) —
   60 fixed bytes — then k×u32 frontier, free tag bytes, u32 pad,
   pad zeros, then the 8-aligned i64 banks. *)

let u32_at s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let put_u32_bytes b pos v =
  for i = 0 to 3 do
    Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let stor_section path =
  match Snap.layout ~path with
  | Ok sections -> List.find (fun s -> s.Snap.tag = "STOR") sections
  | Error c -> Alcotest.failf "layout: %s" (Snap.describe c)

(* after a deliberate payload edit, restore the section CRC so the
   corruption is "coherent" — it must then be caught by semantic
   vetting, not the checksum *)
let recrc path sec =
  let s = Disk.read path in
  let crc = Nd_util.Crc32.string ~off:sec.Snap.off ~len:sec.Snap.len s in
  let b = Bytes.of_string s in
  put_u32_bytes b (sec.Snap.off - 4) crc;
  Disk.write path (Bytes.to_string b)

let test_stor_corruption_ladder () =
  with_tmp @@ fun path ->
  let g, phi, eng = make_reference () in
  let expected = Nd_engine.to_list eng in
  ignore (Snap.save ~path eng);
  let original = Disk.read path in
  let sec = stor_section path in
  let off = sec.Snap.off in
  let k = u32_at original (off + 8) in
  let d = u32_at original (off + 12) in
  let free = u32_at original (off + 28) in
  let klen = u32_at original (off + 36) in
  Alcotest.(check bool) "store image present" true (u32_at original off = 1);
  Alcotest.(check bool) "frontier recorded" true
    (u32_at original (off + 56) = 1);
  Alcotest.(check bool) "keys interned" true (klen > 0);
  let tags_off = off + 60 + (4 * k) in
  let pad_off = tags_off + free in
  let bank_off = pad_off + 4 + u32_at original pad_off in
  Alcotest.(check int) "banks 8-aligned in the file" 0 (bank_off mod 8);
  (* rung 1: raw bit damage inside STOR → the checksum refuses *)
  Disk.flip_bit path ~byte:(tags_off + 1) ~bit:2;
  (match expect_rejected "stor bit flip" path g phi with
  | Snap.Checksum { section = "STOR" } -> ()
  | c -> Alcotest.failf "expected STOR checksum, got %s" (Snap.describe c));
  (* rung 2: truncation mid-bank → the structural parse refuses *)
  Disk.write path original;
  Disk.truncate_at path (bank_off + 4);
  (match expect_rejected "stor truncation" path g phi with
  | Snap.Truncated _ -> ()
  | c -> Alcotest.failf "expected Truncated, got %s" (Snap.describe c));
  (* rung 3: coherent damage (CRC recomputed) → register vetting refuses *)
  Disk.write path original;
  let b = Bytes.of_string original in
  Bytes.set b (tags_off + 1) '\009' (* unknown tag on register 1 *);
  Disk.write path (Bytes.to_string b);
  recrc path sec;
  (match expect_rejected "unknown tag" path g phi with
  | Snap.Decode _ -> ()
  | c -> Alcotest.failf "expected Decode, got %s" (Snap.describe c));
  (* ...but the replay rung ignores STOR entirely and still serves *)
  (match Snap.load_routed ~warm:false ~path g phi with
  | Ok (e, Snap.Replayed) ->
      Alcotest.(check bool) "replay rung unaffected" true
        (Nd_engine.to_list e = expected)
  | Ok (_, _) -> Alcotest.fail "expected the replay route"
  | Error c ->
      Alcotest.failf "replay rung rejected: %s" (Snap.describe c));
  (* rung 4: swapped banks — the root's parent word (-1) lands in the
     key arena and a vertex lands where -1 belongs; CRC recomputed,
     arena vetting refuses *)
  Disk.write path original;
  let karena_off = bank_off + (free * 8) in
  let root_parent_word = bank_off + ((1 + d) * 8) in
  Disk.swap_ranges path (root_parent_word, 8) (karena_off, 8);
  recrc path sec;
  (match expect_rejected "swapped banks" path g phi with
  | Snap.Decode _ -> ()
  | c -> Alcotest.failf "expected Decode, got %s" (Snap.describe c));
  (* rung 5: frontier outside the graph, CRC recomputed → the engine's
     image cross-checks refuse *)
  Disk.write path original;
  let b = Bytes.of_string original in
  put_u32_bytes b (off + 60) (Cgraph.n g + 7);
  Disk.write path (Bytes.to_string b);
  recrc path sec;
  (match expect_rejected "wild frontier" path g phi with
  | Snap.Decode _ -> ()
  | c -> Alcotest.failf "expected Decode, got %s" (Snap.describe c));
  (* every rung above lands load_or_rebuild on an exact rebuild *)
  let rebuilt, outcome = Snap.load_or_rebuild ~path g phi in
  (match outcome with
  | Snap.Rebuilt _ -> ()
  | Snap.Loaded -> Alcotest.fail "corrupt STOR loaded");
  Alcotest.(check bool) "rebuilt handle exact" true
    (Nd_engine.to_list rebuilt = expected)

let suite =
  [
    Alcotest.test_case "zoo round-trips (differential)" `Slow
      test_zoo_roundtrips;
    Alcotest.test_case "round-trips: colors, edges, sentences" `Slow
      test_roundtrip_other_queries;
    Alcotest.test_case "complete cache revives" `Quick
      test_warm_cache_roundtrip;
    Alcotest.test_case "truncation detected (boundaries)" `Quick
      test_truncation_detected;
    Alcotest.test_case "truncation detected (random)" `Slow
      test_truncation_random;
    Alcotest.test_case "bit flips detected (random)" `Slow
      test_bitflip_detected;
    Alcotest.test_case "stale version detected" `Quick
      test_stale_version_detected;
    Alcotest.test_case "swapped sections detected" `Quick
      test_swapped_sections_detected;
    Alcotest.test_case "trailing garbage detected" `Quick
      test_trailing_garbage_detected;
    Alcotest.test_case "wrong graph / query detected" `Quick
      test_wrong_instance_detected;
    Alcotest.test_case "transplanted section detected" `Quick
      test_transplanted_section_detected;
    Alcotest.test_case "load_or_rebuild degrades gracefully" `Quick
      test_load_or_rebuild_fallback;
    Alcotest.test_case "degraded handle refused" `Quick
      test_degraded_handle_refused;
    Alcotest.test_case "stale epoch (ABA) detected" `Quick
      test_stale_epoch_detected;
    Alcotest.test_case "epoch round-trips after update" `Quick
      test_epoch_roundtrip_after_update;
    Alcotest.test_case "journal replay on load_or_rebuild" `Quick
      test_journal_replay;
    Alcotest.test_case "info + layout introspection" `Quick
      test_info_and_layout;
    Alcotest.test_case "atomic overwrite + fingerprint" `Quick
      test_atomic_overwrite;
    Alcotest.test_case "warm load routes (v3 STOR)" `Quick test_warm_routes;
    Alcotest.test_case "warm store stays live" `Quick
      test_warm_store_stays_live;
    Alcotest.test_case "v2 format still readable" `Quick
      test_v2_format_compat;
    Alcotest.test_case "STOR corruption ladder" `Quick
      test_stor_corruption_ladder;
  ]
