(* The span tracer: nesting discipline, ring-buffer overflow, ops
   sampling, and the Chrome trace-event export round-trip. *)

open Nd_util

let setup ?capacity () =
  Metrics.reset ();
  Metrics.disable ();
  Nd_trace.enable ?capacity ();
  Nd_trace.clear ()

let teardown () =
  Nd_trace.disable ();
  Nd_trace.clear ();
  Metrics.reset ();
  Metrics.disable ()

let names () = List.map (fun s -> s.Nd_trace.name) (Nd_trace.spans ())

(* --- nesting ------------------------------------------------------- *)

let test_lifo_nesting () =
  setup ();
  let r =
    Nd_trace.with_span "outer" (fun () ->
        Nd_trace.with_span "inner1" (fun () -> ());
        Nd_trace.with_span "inner2" (fun () -> ());
        17)
  in
  Alcotest.(check int) "result passes through" 17 r;
  (* spans complete in LIFO order: children before the parent *)
  Alcotest.(check (list string))
    "LIFO close order" [ "inner1"; "inner2"; "outer" ] (names ());
  let by_name n =
    List.find (fun s -> s.Nd_trace.name = n) (Nd_trace.spans ())
  in
  let outer = by_name "outer"
  and i1 = by_name "inner1"
  and i2 = by_name "inner2" in
  Alcotest.(check int) "outer is a root" 0 outer.Nd_trace.parent;
  Alcotest.(check int) "inner1 parent" outer.Nd_trace.sid i1.Nd_trace.parent;
  Alcotest.(check int) "inner2 parent" outer.Nd_trace.sid i2.Nd_trace.parent;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Nd_trace.name ^ " duration non-negative")
        true
        (s.Nd_trace.dur_us >= 0))
    (Nd_trace.spans ());
  (* containment: child interval inside the parent interval *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Nd_trace.name ^ " starts after parent")
        true
        (c.Nd_trace.ts_us >= outer.Nd_trace.ts_us);
      Alcotest.(check bool)
        (c.Nd_trace.name ^ " ends before parent")
        true
        (c.Nd_trace.ts_us + c.Nd_trace.dur_us
        <= outer.Nd_trace.ts_us + outer.Nd_trace.dur_us))
    [ i1; i2 ];
  teardown ()

let test_exception_safety () =
  setup ();
  (try
     Nd_trace.with_span "dies" (fun () ->
         Nd_trace.with_span "child" (fun () -> ());
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (list string))
    "span recorded despite the raise" [ "child"; "dies" ] (names ());
  Alcotest.(check int) "stack unwound" 0 (Nd_trace.current_span_id ());
  teardown ()

let test_disabled_is_passthrough () =
  teardown ();
  let r = Nd_trace.with_span "ghost" (fun () -> 5) in
  Alcotest.(check int) "result passes through when disabled" 5 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Nd_trace.spans ()));
  Alcotest.(check int) "no current span" 0 (Nd_trace.current_span_id ())

let test_current_span_id () =
  setup ();
  Alcotest.(check int) "0 outside spans" 0 (Nd_trace.current_span_id ());
  Nd_trace.with_span "a" (fun () ->
      let outer = Nd_trace.current_span_id () in
      Alcotest.(check bool) "nonzero inside" true (outer > 0);
      Nd_trace.with_span "b" (fun () ->
          Alcotest.(check bool)
            "inner differs" true
            (Nd_trace.current_span_id () <> outer)));
  Alcotest.(check int) "0 after closing" 0 (Nd_trace.current_span_id ());
  teardown ()

(* --- ring overflow ------------------------------------------------- *)

let test_ring_overflow_drops_oldest () =
  Metrics.reset ();
  Metrics.enable ();
  (* metrics on: the drop counter must mirror into the registry *)
  Nd_trace.enable ~capacity:4 ();
  Nd_trace.clear ();
  for i = 1 to 10 do
    Nd_trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check (list string))
    "newest 4 survive, oldest dropped first" [ "s7"; "s8"; "s9"; "s10" ]
    (names ());
  Alcotest.(check int) "dropped count" 6 (Nd_trace.dropped ());
  Alcotest.(check int) "trace.dropped mirror counter" 6
    (Metrics.value (Metrics.counter "trace.dropped"));
  Nd_trace.clear ();
  Alcotest.(check int) "clear resets dropped" 0 (Nd_trace.dropped ());
  Alcotest.(check int) "clear drops spans" 0 (List.length (Nd_trace.spans ()));
  teardown ()

(* --- ops sampling -------------------------------------------------- *)

let test_ops_sampling () =
  Metrics.reset ();
  Metrics.enable ();
  Nd_trace.enable ();
  Nd_trace.clear ();
  let work = Metrics.counter ~ops:true "trace_test.work" in
  Nd_trace.with_span "metered" (fun () -> Metrics.add work 7);
  (match Nd_trace.spans () with
  | [ s ] -> Alcotest.(check int) "span ops delta" 7 s.Nd_trace.ops
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  teardown ()

(* --- the phase helper ---------------------------------------------- *)

let test_phase_records_both () =
  Metrics.reset ();
  Metrics.enable ();
  Nd_trace.enable ();
  Nd_trace.clear ();
  let r = Nd_trace.phase "t.both" (fun () -> 9) in
  Alcotest.(check int) "result" 9 r;
  Alcotest.(check (list string)) "span recorded" [ "t.both" ] (names ());
  Alcotest.(check bool) "phase timer recorded" true
    (List.mem_assoc "t.both" (Metrics.phases ()));
  teardown ()

(* --- Chrome export ------------------------------------------------- *)

let test_chrome_roundtrip () =
  setup ();
  Nd_trace.with_span "outer" ~attrs:[ ("k", "v\"quoted\"") ] (fun () ->
      Nd_trace.with_span "inner" (fun () -> ()));
  let doc = Nd_trace.export_chrome () in
  (match Nd_trace.validate_chrome doc with
  | Ok n -> Alcotest.(check int) "event count" 2 n
  | Error e -> Alcotest.failf "export did not validate: %s" e);
  (* parse back and inspect the structure directly *)
  (match Nd_trace.Json.parse doc with
  | Error e -> Alcotest.failf "export is not JSON: %s" e
  | Ok j -> (
      match Nd_trace.Json.member "traceEvents" j with
      | Some (Nd_trace.Json.Arr evs) ->
          Alcotest.(check int) "two events" 2 (List.length evs);
          List.iter
            (fun ev ->
              match Nd_trace.Json.member "ph" ev with
              | Some (Nd_trace.Json.Str "X") -> ()
              | _ -> Alcotest.fail "not a complete event")
            evs
      | _ -> Alcotest.fail "missing traceEvents"));
  (* save goes through the same serializer *)
  let path = Filename.temp_file "nd_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let n = Nd_trace.save_chrome ~path in
      Alcotest.(check int) "saved span count" 2 n;
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Nd_trace.validate_chrome s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "saved file invalid: %s" e);
  teardown ()

let test_validate_rejects_garbage () =
  let bad s =
    match Nd_trace.validate_chrome s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "not json";
  bad "{}";
  bad "{\"traceEvents\":[]}";
  bad "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":0,\"dur\":0}]}";
  bad "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":-1,\"dur\":0}]}";
  (* a child escaping its parent's interval *)
  bad
    "{\"traceEvents\":[{\"name\":\"p\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\
     \"args\":{\"sid\":1,\"parent\":0}},{\"name\":\"c\",\"ph\":\"X\",\
     \"ts\":5,\"dur\":100,\"args\":{\"sid\":2,\"parent\":1}}]}"

(* --- instrumented layers actually emit spans ----------------------- *)

let test_engine_emits_spans () =
  setup ();
  let g =
    Nd_graph.Gen.randomly_color ~seed:3 ~colors:2 (Nd_graph.Gen.grid 6 6)
  in
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare g phi in
  Nd_engine.enumerate ~limit:5 (fun _ -> ()) eng;
  let ns = names () in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (expected ^ " span present")
        true (List.mem expected ns))
    [ "engine.prepare"; "cover.compute"; "engine.next" ];
  (match Nd_trace.validate_chrome (Nd_trace.export_chrome ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "engine trace invalid: %s" e);
  teardown ()

let suite =
  [
    Alcotest.test_case "LIFO nesting + containment" `Quick test_lifo_nesting;
    Alcotest.test_case "exception safety" `Quick test_exception_safety;
    Alcotest.test_case "disabled = passthrough" `Quick
      test_disabled_is_passthrough;
    Alcotest.test_case "current_span_id" `Quick test_current_span_id;
    Alcotest.test_case "ring overflow drops oldest" `Quick
      test_ring_overflow_drops_oldest;
    Alcotest.test_case "per-span ops deltas" `Quick test_ops_sampling;
    Alcotest.test_case "phase = timer + span" `Quick test_phase_records_both;
    Alcotest.test_case "Chrome export round-trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "validator rejects malformed traces" `Quick
      test_validate_rejects_garbage;
    Alcotest.test_case "engine layers emit spans" `Quick
      test_engine_emits_spans;
  ]
