(* The socket chaos proxy driving the serve loop's connection hygiene:
   a real server and a real client with a deterministic adversary
   between them.  Every fault class in Chaos.Net.profile is exercised
   against the hygiene mechanism built to survive it, and after every
   fault the server must still answer a clean follow-up connection —
   no crash, no wedged thread, no leaked in-flight slot. *)

open Nd_graph
open Nd_logic
module Server = Nd_server
module Client = Nd_server.Client
module Net = Nd_ram.Chaos.Net

let graph () = Gen.randomly_color ~seed:5 ~colors:3 (Gen.grid 5 5)

let make_server config =
  let g = graph () in
  let phi = Parse.formula "dist(x,y) <= 2" in
  Server.create ~config (Nd_engine.prepare g phi)

let tmp_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nd_chaos_%s_%d_%d.sock" tag (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1000.) land 0xffffff))

(* Host server + proxy, hand [f] the proxy's listen path (what clients
   should connect to) and the upstream path (for clean follow-up
   connections that bypass the adversary). *)
let with_proxied_server ~config ~profile f =
  let upstream = tmp_path "up" and listen = tmp_path "px" in
  let srv = make_server config in
  let th =
    Thread.create
      (fun () -> try Server.serve_socket srv ~path:upstream with _ -> ())
      ()
  in
  let rec wait tries =
    if Sys.file_exists upstream then ()
    else if tries = 0 then Alcotest.fail "server socket never appeared"
    else begin
      Unix.sleepf 0.05;
      wait (tries - 1)
    end
  in
  wait 100;
  let proxy = Net.start profile ~listen ~upstream in
  Fun.protect
    ~finally:(fun () ->
      Net.stop proxy;
      Server.request_stop srv;
      Thread.join th;
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ upstream; listen ])
  @@ fun () -> f ~listen ~upstream ~srv ~proxy

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let with_conn path f =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  f (Client.channel_transport
       (Unix.in_channel_of_descr fd)
       (Unix.out_channel_of_descr fd))

(* the post-fault invariant: a clean connection straight to the server
   still answers *)
let check_still_serving upstream =
  with_conn upstream @@ fun t ->
  Alcotest.(check (list string)) "clean follow-up connection answers"
    [ "true"; "ok" ] (t "test 0,1")

let hygiene_config =
  {
    Server.default_config with
    Server.io_timeout_ms = Some 150;
    idle_timeout_ms = Some 2_000;
    max_line_bytes = 128;
  }

let test_transparent_roundtrip () =
  with_proxied_server ~config:hygiene_config ~profile:Net.default_profile
  @@ fun ~listen ~upstream:_ ~srv:_ ~proxy ->
  with_conn listen (fun t ->
      Alcotest.(check (list string)) "proxied round-trip" [ "true"; "ok" ]
        (t "test 0,1");
      Alcotest.(check (list string)) "proxied quit" [ "bye" ] (t "quit"));
  Alcotest.(check int) "adversary saw the connection" 1 (Net.connections proxy)

let test_slow_loris_hits_io_timeout () =
  (* byte-at-a-time with 40ms gaps: the request line arrives slower
     than io_timeout_ms=150, so the bounded reader must cut it off
     with err user instead of waiting forever *)
  let profile = { Net.default_profile with Net.chunk = 1; delay_ms = 40 } in
  with_proxied_server ~config:hygiene_config ~profile
  @@ fun ~listen ~upstream ~srv:_ ~proxy:_ ->
  with_conn listen (fun t ->
      let reply = t "enumerate 3" in
      match Client.status_of_reply reply with
      | Client.Err_reply ("user", msg) ->
          Alcotest.(check bool)
            (Printf.sprintf "names the deadline: %s" msg)
            true
            (String.length msg > 0)
      | _ ->
          Alcotest.failf "expected err user, got: %s" (String.concat "|" reply));
  check_still_serving upstream

let test_garbage_bytes_get_structured_error () =
  let profile =
    { Net.default_profile with Net.garbage = Some "\xff\xfe\x00garbage\n" }
  in
  with_proxied_server ~config:hygiene_config ~profile
  @@ fun ~listen ~upstream ~srv:_ ~proxy:_ ->
  with_conn listen (fun t ->
      (* the injected garbage line is answered first — as a structured
         user error, not a crash — then the real request *)
      match Client.status_of_reply (t "test 0,1") with
      | Client.Err_reply ("user", _) ->
          Alcotest.(check (list string)) "real request still answered"
            [ "true"; "ok" ] (t "")
      | s ->
          Alcotest.failf "garbage line did not yield err user (%s)"
            (match s with
            | Client.Ok_reply -> "ok"
            | Client.Closed -> "closed"
            | Client.Transport_error m -> "transport: " ^ m
            | Client.Err_reply (c, _) -> "err " ^ c));
  check_still_serving upstream

let test_oversized_line_rejected () =
  with_proxied_server ~config:hygiene_config ~profile:Net.default_profile
  @@ fun ~listen ~upstream ~srv:_ ~proxy:_ ->
  with_conn listen (fun t ->
      let huge = "test " ^ String.make 300 '1' in
      let reply = t huge in
      match Client.status_of_reply reply with
      | Client.Err_reply ("user", msg) ->
          Alcotest.(check bool) "names max-line-bytes" true
            (String.length msg >= 14)
      | _ ->
          Alcotest.failf "expected err user, got: %s" (String.concat "|" reply));
  check_still_serving upstream

(* Disconnect mid-enumerate, with max_inflight=1: if the dying request
   leaked its in-flight slot, every later request would be shed — the
   strongest observable form of "the cursor/slot must not leak". *)
let test_disconnect_mid_reply_releases_slot () =
  let config =
    { hygiene_config with Server.max_inflight = Some 1; retry_after_ms = 10 }
  in
  let profile = { Net.default_profile with Net.cut_reply_after = Some 10 } in
  with_proxied_server ~config ~profile
  @@ fun ~listen ~upstream ~srv ~proxy:_ ->
  (match
     with_conn listen (fun t -> Client.status_of_reply (t "enumerate 5"))
   with
  | Client.Transport_error _ | Client.Closed -> ()
  | s ->
      Alcotest.failf "reply survived the cut (%s)"
        (match s with
        | Client.Ok_reply -> "ok"
        | Client.Err_reply (c, _) -> "err " ^ c
        | _ -> assert false));
  (* several clean requests through the gate: all must be admitted *)
  for _ = 1 to 3 do
    check_still_serving upstream
  done;
  Alcotest.(check int) "nothing was shed" 0 (Server.counts srv).Server.overloaded

let test_disconnect_mid_request_survives () =
  let profile = { Net.default_profile with Net.cut_after = Some 5 } in
  with_proxied_server ~config:hygiene_config ~profile
  @@ fun ~listen ~upstream ~srv:_ ~proxy:_ ->
  (match
     with_conn listen (fun t -> Client.status_of_reply (t "enumerate 3"))
   with
  | Client.Transport_error _ | Client.Closed | Client.Err_reply _ -> ()
  | Client.Ok_reply -> Alcotest.fail "truncated request somehow succeeded");
  check_still_serving upstream

let test_proxy_stop_is_idempotent () =
  let upstream = tmp_path "idem_up" and listen = tmp_path "idem_px" in
  (* no live upstream needed: the proxy connects lazily *)
  let proxy = Net.start Net.default_profile ~listen ~upstream in
  Alcotest.(check bool) "listen socket exists" true (Sys.file_exists listen);
  Net.stop proxy;
  Net.stop proxy;
  Alcotest.(check bool) "listen socket removed" false (Sys.file_exists listen)

let suite =
  [
    Alcotest.test_case "transparent proxy round-trip" `Quick
      test_transparent_roundtrip;
    Alcotest.test_case "slow-loris trips io-timeout" `Quick
      test_slow_loris_hits_io_timeout;
    Alcotest.test_case "garbage bytes get err user" `Quick
      test_garbage_bytes_get_structured_error;
    Alcotest.test_case "oversized line rejected" `Quick
      test_oversized_line_rejected;
    Alcotest.test_case "disconnect mid-reply releases the slot" `Quick
      test_disconnect_mid_reply_releases_slot;
    Alcotest.test_case "disconnect mid-request survives" `Quick
      test_disconnect_mid_request_survives;
    Alcotest.test_case "proxy stop is idempotent" `Quick
      test_proxy_stop_is_idempotent;
  ]
